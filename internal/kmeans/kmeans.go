// Package kmeans implements classical K-Means clustering (Lloyd's
// algorithm) with k-means++ and random initialization.
//
// In this repository it plays two roles: it is the S-blind baseline
// "K-Means(N)" from the paper's evaluation (Section 5.3), and its
// initialization routines seed FairKM and ZGYA so all methods start from
// comparable configurations.
//
// Since the descent-engine refactor the package is a thin objective
// over internal/engine: Lloyd iteration is the engine's frozen sweep
// with one batch spanning the whole dataset (score every point against
// centroids frozen at the iteration start, apply all reassignments,
// recompute). Initialization, convergence policies (zero-moves, Tol,
// MaxIter, wall-clock budget), parallel scoring and the per-iteration
// observer hook all come from the engine and behave identically across
// FairKM, K-Means and ZGYA; see DESIGN.md.
package kmeans

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/stats"
)

// InitMethod selects how initial clusters are chosen. It is the
// engine's shared initializer selector; the constants re-export
// engine's so existing call sites keep working.
type InitMethod = engine.InitMethod

const (
	// KMeansPlusPlus picks initial centroids with the k-means++
	// D²-weighting scheme (Arthur & Vassilvitskii 2007). Zero value:
	// the default for every solver in this repository.
	KMeansPlusPlus = engine.KMeansPlusPlus
	// RandomPartition assigns every point to a uniformly random cluster
	// (with empty-cluster repair), matching "Initialize k clusters
	// randomly" in FairKM's Algorithm 1.
	RandomPartition = engine.RandomPartition
	// RandomPoints picks k distinct data points as initial centroids.
	RandomPoints = engine.RandomPoints
)

// Config parameterizes a K-Means run.
type Config struct {
	// K is the number of clusters; required, 1 <= K <= n.
	K int
	// MaxIter bounds Lloyd iterations. Zero means the default of 100.
	MaxIter int
	// Seed drives initialization.
	Seed int64
	// Init selects the initialization method.
	Init InitMethod
	// InitCentroids, when non-nil, overrides Init with explicit initial
	// centroids (length K); the Seed is then not consumed. Used for
	// warm starts (e.g. refining a streaming solve) and by the
	// weighted/duplicated parity tests, which need both runs to start
	// from the same configuration.
	InitCentroids [][]float64
	// Tol stops iteration when the objective improves by less than Tol
	// between iterations. Zero — the default — means exact convergence
	// (no change in assignments), the same policy FairKM and ZGYA
	// default to.
	Tol float64
	// Budget, when positive, stops the run at the first iteration
	// boundary after the wall-clock budget is spent.
	Budget time.Duration
	// Parallelism is the number of scoring workers per Lloyd
	// iteration: 0 or 1 scores sequentially, n > 1 uses n goroutines,
	// any negative value uses GOMAXPROCS. Because Lloyd scoring
	// against frozen centroids is pure, results are bit-identical for
	// every setting.
	Parallelism int
	// FullScan disables Hamerly triangle-inequality pruning: every row
	// is scored with the naive k-way centroid scan each iteration. The
	// pruned default is bit-identical to this path (assignments,
	// iteration counts and objective bits — pinned by prune_test.go);
	// the switch exists as the test/benchmark reference, not as a
	// correctness knob.
	FullScan bool
	// Observer, when non-nil, receives per-iteration statistics
	// (moves, objective, elapsed wall-clock).
	Observer engine.Observer
}

// DefaultMaxIter is used when Config.MaxIter is zero.
const DefaultMaxIter = 100

// Result is a completed clustering.
type Result struct {
	// Assign maps each row to its cluster in [0, K).
	Assign []int
	// Centroids holds the K cluster means over the feature space.
	// Empty clusters have zero-vector centroids.
	Centroids [][]float64
	// Sizes holds per-cluster cardinalities.
	Sizes []int
	// Objective is the final K-Means SSE (Eq. 24 in the paper).
	Objective float64
	// Iterations is the number of Lloyd iterations executed.
	Iterations int
	// Converged reports whether assignments stabilized (or the Tol
	// policy fired) before MaxIter.
	Converged bool
}

// K returns the number of clusters in the result.
func (r *Result) K() int { return len(r.Centroids) }

// lloyd is the K-Means objective for the descent engine: assignments
// plus centroids frozen at the iteration start. Scoring is the classic
// nearest-frozen-centroid rule; Move only updates the assignment —
// centroids are re-derived from scratch on every Freeze, exactly like
// the textbook recompute step (and bit-identical to the pre-engine
// loop, which never kept incremental sums).
type lloyd struct {
	features [][]float64
	k        int
	assign   []int
	frozen   [][]float64
	prune    *pruner // nil → naive full scan every row
}

func (l *lloyd) N() int                   { return len(l.features) }
func (l *lloyd) K() int                   { return l.k }
func (l *lloyd) Current(i int) int        { return l.assign[i] }
func (l *lloyd) Move(i, from, to int)     { l.assign[i] = to }
func (l *lloyd) BestMove(i, from int) int { return l.nearest(i) }
func (l *lloyd) Delta(i, from, to int) float64 {
	x := l.features[i]
	return stats.SqDist(x, l.frozen[to]) - stats.SqDist(x, l.frozen[from])
}

// Value is the SSE against the frozen centroids — the quantity the Tol
// policy compares between iterations.
func (l *lloyd) Value() float64 { return SSE(l.features, l.assign, l.frozen) }

// nearest applies the shared nearestCentroid rule against the frozen
// centroids, through the Hamerly pruner when one is attached (the
// pruned result is bit-identical; see prune.go).
func (l *lloyd) nearest(i int) int {
	if l.prune != nil {
		return l.prune.bestMove(i, l.assign[i], l.frozen)
	}
	return nearestCentroid(l.features[i], l.frozen)
}

// NewSnapshot: the frozen-centroid view IS the snapshot; Freeze
// recomputes it from the live assignment.
func (l *lloyd) NewSnapshot() engine.Snapshot { return (*lloydSnap)(l) }

type lloydSnap lloyd

func (s *lloydSnap) Freeze() {
	s.frozen = computeCentroids(s.features, s.assign, s.k)
	if s.prune != nil {
		s.prune.refresh(s.frozen, s.assign)
	}
}

func (s *lloydSnap) BestMove(i, from int) int { return (*lloyd)(s).nearest(i) }

// Run clusters the given feature rows. It returns an error for invalid
// configurations (K out of range, ragged or empty input).
func Run(features [][]float64, cfg Config) (*Result, error) {
	n := len(features)
	if n == 0 {
		return nil, errors.New("kmeans: empty dataset")
	}
	dim := len(features[0])
	for i, row := range features {
		if len(row) != dim {
			return nil, fmt.Errorf("kmeans: row %d has %d features, want %d", i, len(row), dim)
		}
	}
	if cfg.K < 1 || cfg.K > n {
		return nil, fmt.Errorf("kmeans: K=%d out of range [1,%d]", cfg.K, n)
	}
	if err := validateInitCentroids(&cfg, dim); err != nil {
		return nil, err
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	workers := cfg.Parallelism
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	obj := &lloyd{
		features: features,
		k:        cfg.K,
		assign:   initialAssign(features, nil, &cfg),
	}
	if !cfg.FullScan {
		obj.prune = newPruner(features)
	}

	er := engine.Solve(obj, engine.NewLloydSweep(obj, workers), engine.Config{
		MaxIter:  maxIter,
		Tol:      cfg.Tol,
		Budget:   cfg.Budget,
		Observer: cfg.Observer,
	})

	res := &Result{
		Assign:     obj.assign,
		Iterations: er.Iterations,
		Converged:  er.Converged,
	}
	res.Centroids = computeCentroids(features, obj.assign, cfg.K)
	res.Sizes = Sizes(obj.assign, cfg.K)
	res.Objective = SSE(features, obj.assign, res.Centroids)
	return res, nil
}

// PlusPlusCentroids returns k centroids chosen by the k-means++
// D²-sampling procedure (shared engine implementation).
func PlusPlusCentroids(features [][]float64, k int, rng *stats.RNG) [][]float64 {
	return engine.PlusPlusCentroids(features, k, rng)
}

// validateInitCentroids checks the InitCentroids override shape.
func validateInitCentroids(cfg *Config, dim int) error {
	if cfg.InitCentroids == nil {
		return nil
	}
	if len(cfg.InitCentroids) != cfg.K {
		return fmt.Errorf("kmeans: %d initial centroids for K=%d", len(cfg.InitCentroids), cfg.K)
	}
	for c, cen := range cfg.InitCentroids {
		if len(cen) != dim {
			return fmt.Errorf("kmeans: initial centroid %d has %d features, want %d", c, len(cen), dim)
		}
	}
	return nil
}

// initialAssign produces the starting partition for Run (weights nil)
// and RunWeighted: nearest-centroid against the InitCentroids override
// when present, otherwise the engine's (weighted) initializer.
func initialAssign(features [][]float64, weights []float64, cfg *Config) []int {
	if cfg.InitCentroids != nil {
		assign := make([]int, len(features))
		assignAll(features, cfg.InitCentroids, assign)
		return assign
	}
	return engine.InitAssignmentWeighted(features, weights, cfg.K, cfg.Init, stats.NewRNG(cfg.Seed))
}

// assignAll reassigns every point to its nearest centroid, returning how
// many assignments changed (still used by the weighted variant).
func assignAll(features [][]float64, centroids [][]float64, assign []int) int {
	changed := 0
	for i, x := range features {
		best, bestD := 0, math.Inf(1)
		for c, cen := range centroids {
			if d := stats.SqDist(x, cen); d < bestD {
				best, bestD = c, d
			}
		}
		if assign[i] != best {
			assign[i] = best
			changed++
		}
	}
	return changed
}

// computeCentroids returns the per-cluster feature means. Empty clusters
// get zero vectors.
func computeCentroids(features [][]float64, assign []int, k int) [][]float64 {
	dim := len(features[0])
	sums := make([][]float64, k)
	for c := range sums {
		sums[c] = make([]float64, dim)
	}
	counts := make([]int, k)
	for i, x := range features {
		stats.AddTo(sums[assign[i]], x)
		counts[assign[i]]++
	}
	for c := range sums {
		if counts[c] > 0 {
			stats.Scale(sums[c], 1/float64(counts[c]))
		}
	}
	return sums
}

// Centroids exposes centroid computation for other packages (metrics,
// FairKM tests).
func Centroids(features [][]float64, assign []int, k int) [][]float64 {
	return computeCentroids(features, assign, k)
}

// SSE returns the K-Means objective: the summed squared distance of each
// point to its cluster centroid (Eq. 24).
func SSE(features [][]float64, assign []int, centroids [][]float64) float64 {
	s := 0.0
	for i, x := range features {
		s += stats.SqDist(x, centroids[assign[i]])
	}
	return s
}

// Sizes returns per-cluster cardinalities for an assignment.
func Sizes(assign []int, k int) []int {
	sizes := make([]int, k)
	for _, c := range assign {
		sizes[c]++
	}
	return sizes
}
