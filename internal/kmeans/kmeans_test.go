package kmeans

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// blobs generates g well-separated Gaussian blobs of m points each.
func blobs(seed int64, g, m, dim int, sep float64) ([][]float64, []int) {
	rng := stats.NewRNG(seed)
	features := make([][]float64, 0, g*m)
	labels := make([]int, 0, g*m)
	for c := 0; c < g; c++ {
		center := make([]float64, dim)
		for j := range center {
			center[j] = float64(c) * sep
		}
		for i := 0; i < m; i++ {
			x := make([]float64, dim)
			for j := range x {
				x[j] = center[j] + rng.Gaussian(0, 0.3)
			}
			features = append(features, x)
			labels = append(labels, c)
		}
	}
	return features, labels
}

func TestRecoverSeparatedBlobs(t *testing.T) {
	features, labels := blobs(1, 3, 40, 4, 20)
	for _, init := range []InitMethod{KMeansPlusPlus, RandomPartition, RandomPoints} {
		res, err := Run(features, Config{K: 3, Seed: 5, Init: init})
		if err != nil {
			t.Fatalf("init %v: %v", init, err)
		}
		// Every true blob must map to exactly one cluster.
		seen := map[int]map[int]bool{}
		for i, lab := range labels {
			if seen[lab] == nil {
				seen[lab] = map[int]bool{}
			}
			seen[lab][res.Assign[i]] = true
		}
		for lab, cs := range seen {
			if len(cs) != 1 {
				t.Errorf("init %v: blob %d split across clusters %v", init, lab, cs)
			}
		}
		if !res.Converged {
			t.Errorf("init %v: did not converge", init)
		}
	}
}

func TestObjectiveDecreasesMonotonically(t *testing.T) {
	// Lloyd's algorithm guarantees non-increasing SSE; verify indirectly
	// by checking the final SSE is no worse than after one iteration.
	features, _ := blobs(2, 4, 30, 3, 5)
	one, err := Run(features, Config{K: 4, Seed: 9, MaxIter: 1})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(features, Config{K: 4, Seed: 9, MaxIter: 50})
	if err != nil {
		t.Fatal(err)
	}
	if full.Objective > one.Objective+1e-9 {
		t.Errorf("SSE worsened: 1 iter %v, full %v", one.Objective, full.Objective)
	}
}

func TestConfigValidation(t *testing.T) {
	features, _ := blobs(3, 2, 5, 2, 5)
	if _, err := Run(nil, Config{K: 2}); err == nil {
		t.Error("nil features accepted")
	}
	if _, err := Run(features, Config{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Run(features, Config{K: len(features) + 1}); err == nil {
		t.Error("K>n accepted")
	}
	if _, err := Run([][]float64{{1, 2}, {3}}, Config{K: 1}); err == nil {
		t.Error("ragged features accepted")
	}
}

func TestKEqualsN(t *testing.T) {
	features, _ := blobs(4, 1, 5, 2, 0)
	res, err := Run(features, Config{K: 5, Seed: 1, Init: RandomPoints})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective > 1e-6 {
		// With k = n each point can have its own cluster; SSE ~ 0 is
		// reachable but not guaranteed by Lloyd from any start, so just
		// check validity of the assignment.
		for _, c := range res.Assign {
			if c < 0 || c >= 5 {
				t.Fatalf("invalid cluster %d", c)
			}
		}
	}
}

func TestSizesSumToN(t *testing.T) {
	features, _ := blobs(5, 3, 20, 2, 8)
	res, err := Run(features, Config{K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(features) {
		t.Errorf("sizes sum to %d, want %d", total, len(features))
	}
}

func TestSSEMatchesDefinition(t *testing.T) {
	features, _ := blobs(6, 2, 15, 3, 6)
	res, err := Run(features, Config{K: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	manual := 0.0
	for i, x := range features {
		manual += stats.SqDist(x, res.Centroids[res.Assign[i]])
	}
	if math.Abs(manual-res.Objective) > 1e-9*(1+manual) {
		t.Errorf("SSE %v, manual %v", res.Objective, manual)
	}
}

func TestPlusPlusSpreadsCentroids(t *testing.T) {
	features, _ := blobs(7, 4, 25, 2, 50)
	rng := stats.NewRNG(11)
	cents := PlusPlusCentroids(features, 4, rng)
	if len(cents) != 4 {
		t.Fatalf("got %d centroids", len(cents))
	}
	// With blobs 50 apart and k-means++ D² weighting, all four
	// centroids should land in distinct blobs.
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if stats.Dist(cents[i], cents[j]) < 10 {
				t.Errorf("centroids %d and %d are in the same blob", i, j)
			}
		}
	}
}

func TestPlusPlusDegenerateData(t *testing.T) {
	// All points identical: D² weights collapse to zero; must not panic.
	features := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	rng := stats.NewRNG(1)
	cents := PlusPlusCentroids(features, 3, rng)
	if len(cents) != 3 {
		t.Fatalf("got %d centroids", len(cents))
	}
}

func TestRandomPartitionNoEmptyClusters(t *testing.T) {
	features, _ := blobs(8, 1, 30, 2, 0)
	for seed := int64(0); seed < 20; seed++ {
		res, err := Run(features, Config{K: 7, Seed: seed, Init: RandomPartition, MaxIter: 1})
		if err != nil {
			t.Fatal(err)
		}
		_ = res
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	features, _ := blobs(9, 3, 20, 3, 4)
	a, _ := Run(features, Config{K: 3, Seed: 21})
	b, _ := Run(features, Config{K: 3, Seed: 21})
	if a.Objective != b.Objective {
		t.Errorf("objectives differ: %v vs %v", a.Objective, b.Objective)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("assignment %d differs", i)
		}
	}
}

func TestInitMethodString(t *testing.T) {
	if KMeansPlusPlus.String() != "kmeans++" ||
		RandomPartition.String() != "random-partition" ||
		RandomPoints.String() != "random-points" {
		t.Error("InitMethod String values changed")
	}
	if InitMethod(99).String() == "" {
		t.Error("unknown method should still stringify")
	}
}
