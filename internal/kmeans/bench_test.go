package kmeans

import (
	"fmt"
	"testing"
)

// BenchmarkLloyd sweeps k for full Lloyd runs with Hamerly pruning on
// (the default) and off (Config.FullScan), on 4096 mildly-overlapping
// blob rows in the Adult-shaped dim-8 space. Identical seeds and
// MaxIter mean both variants execute the exact same iterations on the
// exact same assignments (pinned by TestPrunedParityGrid), so the
// ratio is pure scan-avoidance; it must grow with k (see
// EXPERIMENTS.md and the benchguard baseline).
func BenchmarkLloyd(b *testing.B) {
	features := blobFeatures(1, 4096, 12, 8)
	for _, k := range []int{5, 15, 50, 150} {
		for _, mode := range []struct {
			name string
			full bool
		}{{"pruned", false}, {"full", true}} {
			b.Run(fmt.Sprintf("kernel=%s/k=%d", mode.name, k), func(b *testing.B) {
				var iters int
				for i := 0; i < b.N; i++ {
					res, err := Run(features, Config{K: k, Seed: 1, MaxIter: 25, FullScan: mode.full})
					if err != nil {
						b.Fatal(err)
					}
					iters = res.Iterations
				}
				b.ReportMetric(float64(iters), "lloyd-iters")
			})
		}
	}
}
