package kmeans

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/stats"
)

// comparePrunedFull runs the same configuration with pruning (default)
// and with Config.FullScan and requires bit-identical results:
// assignments (including ties), iteration counts, convergence flags,
// centroid bits and objective bits.
func comparePrunedFull(t *testing.T, name string, features [][]float64, weights []float64, cfg Config) {
	t.Helper()
	run := func(fullScan bool) *Result {
		c := cfg
		c.FullScan = fullScan
		var r *Result
		var err error
		if weights == nil {
			r, err = Run(features, c)
		} else {
			r, err = RunWeighted(features, weights, c)
		}
		if err != nil {
			t.Fatalf("%s (fullScan=%v): %v", name, fullScan, err)
		}
		return r
	}
	ref := run(true)
	got := run(false)
	if got.Iterations != ref.Iterations || got.Converged != ref.Converged {
		t.Errorf("%s: iterations %d/%v pruned vs %d/%v full", name, got.Iterations, got.Converged, ref.Iterations, ref.Converged)
	}
	for i := range ref.Assign {
		if got.Assign[i] != ref.Assign[i] {
			t.Fatalf("%s: assign[%d] = %d pruned, %d full scan", name, i, got.Assign[i], ref.Assign[i])
		}
	}
	if math.Float64bits(got.Objective) != math.Float64bits(ref.Objective) {
		t.Errorf("%s: objective bits differ: %v pruned vs %v full", name, got.Objective, ref.Objective)
	}
	for c := range ref.Centroids {
		for j := range ref.Centroids[c] {
			if math.Float64bits(got.Centroids[c][j]) != math.Float64bits(ref.Centroids[c][j]) {
				t.Fatalf("%s: centroid[%d][%d] bits differ", name, c, j)
			}
		}
	}
}

// TestPrunedParityGrid is the pruned-vs-naive contract across
// k × dim × seed × weighting × Parallelism: Hamerly pruning must be
// invisible in every output bit, for every worker count.
func TestPrunedParityGrid(t *testing.T) {
	for _, k := range []int{1, 3, 8, 25} {
		for _, dim := range []int{1, 2, 5, 8} {
			for _, seed := range []int64{1, 7} {
				features := blobFeatures(seed, 240, k, dim)
				weights := make([]float64, len(features))
				rng := stats.NewRNG(seed + 99)
				for i := range weights {
					weights[i] = 0.25 + 4*rng.Float64()
				}
				for _, par := range []int{0, 1, 2, 3, 8, -1} {
					cfg := Config{K: k, Seed: seed, Parallelism: par, MaxIter: 40}
					name := fmt.Sprintf("k%d_d%d_s%d_p%d", k, dim, seed, par)
					comparePrunedFull(t, name+"_unweighted", features, nil, cfg)
					comparePrunedFull(t, name+"_weighted", features, weights, cfg)
				}
			}
		}
	}
}

// TestPrunedParityAdversarial drives the tie cases that force the
// pruner's strict tests to degrade to the full scan: duplicate initial
// centroids (instant empty clusters + zero-vector centroids),
// duplicated rows, and an integer lattice where many rows are exactly
// equidistant to several centroids.
func TestPrunedParityAdversarial(t *testing.T) {
	// Integer lattice: 6×6 grid duplicated 3×, so exact cross-centroid
	// ties are the norm, not the exception.
	var lattice [][]float64
	for rep := 0; rep < 3; rep++ {
		for a := 0; a < 6; a++ {
			for b := 0; b < 6; b++ {
				lattice = append(lattice, []float64{float64(a), float64(b)})
			}
		}
	}
	for _, par := range []int{0, 3, -1} {
		comparePrunedFull(t, fmt.Sprintf("lattice_p%d", par), lattice, nil,
			Config{K: 4, Seed: 3, Parallelism: par, MaxIter: 30})

		// Duplicate initial centroids: centroids 0 and 1 are the same
		// point, so cluster 1 drains immediately and stays an empty
		// zero-vector centroid — itself a duplicate of any other empty.
		dup := [][]float64{{1, 1}, {1, 1}, {4, 0}, {0, 4}}
		comparePrunedFull(t, fmt.Sprintf("dupinit_p%d", par), lattice, nil,
			Config{K: 4, InitCentroids: dup, Parallelism: par, MaxIter: 30})
	}
	// Weighted lattice with integer weights (still heavy with ties).
	w := make([]float64, len(lattice))
	for i := range w {
		w[i] = float64(1 + i%3)
	}
	comparePrunedFull(t, "lattice_weighted", lattice, w,
		Config{K: 5, Seed: 11, Parallelism: 2, MaxIter: 30})
}

// TestPruneBoundInvariants steps Lloyd manually and, after every
// iteration, checks the Hamerly invariants against exact distances for
// every row: u[i] ≥ d(x_i, c_assign) and l[i] ≤ min over the other
// centroids — and that pruning actually skipped scans once assignments
// settle.
func TestPruneBoundInvariants(t *testing.T) {
	// K over-provisioned vs the blob count forces cluster splitting, so
	// centroids drift for many iterations and the bound updates (not
	// just the first-scan seeding) carry the invariants.
	features := blobFeatures(5, 400, 3, 4)
	cfg := Config{K: 9, Seed: 5}
	obj := &lloyd{
		features: features,
		k:        cfg.K,
		assign:   initialAssign(features, nil, &cfg),
	}
	obj.prune = newPruner(features)
	sw := engine.NewLloydSweep(obj, 3)

	const relEps = 1e-9
	iters := 0
	for ; iters < 40; iters++ {
		moves := sw.Sweep()
		for i, x := range features {
			a := obj.assign[i]
			da := stats.Dist(x, obj.frozen[a])
			if obj.prune.u[i] < da-relEps*(1+da) {
				t.Fatalf("iter %d row %d: upper bound %v < true distance %v", iters, i, obj.prune.u[i], da)
			}
			minOther := math.Inf(1)
			for c := range obj.frozen {
				if c == a {
					continue
				}
				if d := stats.Dist(x, obj.frozen[c]); d < minOther {
					minOther = d
				}
			}
			if obj.prune.l[i] > minOther+relEps*(1+minOther) {
				t.Fatalf("iter %d row %d: lower bound %v > min other distance %v", iters, i, obj.prune.l[i], minOther)
			}
		}
		if moves == 0 {
			break
		}
	}
	n := int64(len(features))
	total := n * int64(iters+1)
	scans := obj.prune.Scans()
	if scans >= total {
		t.Fatalf("pruner scanned %d of %d row-iterations: never pruned", scans, total)
	}
	t.Logf("pruner: %d full scans over %d row-iterations (%.1f%%)", scans, total, 100*float64(scans)/float64(total))
}

// TestPrunedMatchesScanPerRow cross-checks bestMove directly against
// nearestCentroid for every row of every iteration (not just the final
// partition): the pruner must return the identical index, tie cases
// included.
func TestPrunedMatchesScanPerRow(t *testing.T) {
	features := blobFeatures(9, 300, 2, 3)
	cfg := Config{K: 7, Seed: 9}
	obj := &lloyd{
		features: features,
		k:        cfg.K,
		assign:   initialAssign(features, nil, &cfg),
	}
	obj.prune = newPruner(features)
	sw := engine.NewLloydSweep(obj, 1)
	for iter := 0; iter < 25; iter++ {
		moves := sw.Sweep()
		// obj.frozen now holds the centroids this sweep scored against;
		// replay the decision for every row from the post-sweep state.
		for i := range features {
			want := nearestCentroid(features[i], obj.frozen)
			if obj.assign[i] != want {
				t.Fatalf("iter %d row %d: pruned sweep assigned %d, naive rule says %d", iter, i, obj.assign[i], want)
			}
		}
		if moves == 0 {
			break
		}
	}
}
