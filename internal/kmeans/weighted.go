package kmeans

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// RunWeighted clusters weighted points: the objective is
// Σ_i w_i·‖x_i − μ_{assign(i)}‖² and centroids are weighted means.
// It is the substrate for coreset-based clustering (internal/coreset),
// where each retained point stands for w_i original points. Weights
// must be positive and finite.
func RunWeighted(features [][]float64, weights []float64, cfg Config) (*Result, error) {
	n := len(features)
	if n == 0 {
		return nil, errors.New("kmeans: empty dataset")
	}
	if len(weights) != n {
		return nil, fmt.Errorf("kmeans: %d weights for %d points", len(weights), n)
	}
	for i, w := range weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("kmeans: weight[%d] = %v must be positive and finite", i, w)
		}
	}
	dim := len(features[0])
	for i, row := range features {
		if len(row) != dim {
			return nil, fmt.Errorf("kmeans: row %d has %d features, want %d", i, len(row), dim)
		}
	}
	if cfg.K < 1 || cfg.K > n {
		return nil, fmt.Errorf("kmeans: K=%d out of range [1,%d]", cfg.K, n)
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	rng := stats.NewRNG(cfg.Seed)

	// Initialization: weighted k-means++ (D² values scaled by weight).
	centroids := weightedPlusPlus(features, weights, cfg.K, rng)
	assign := make([]int, n)
	assignAll(features, centroids, assign)

	res := &Result{Assign: assign}
	for iter := 1; iter <= maxIter; iter++ {
		res.Iterations = iter
		centroids = weightedCentroids(features, weights, assign, cfg.K)
		if assignAll(features, centroids, assign) == 0 {
			res.Converged = true
			break
		}
	}
	res.Centroids = weightedCentroids(features, weights, assign, cfg.K)
	res.Sizes = Sizes(assign, cfg.K)
	res.Objective = WeightedSSE(features, weights, assign, res.Centroids)
	return res, nil
}

// weightedPlusPlus is k-means++ with weight-scaled D² sampling.
func weightedPlusPlus(features [][]float64, weights []float64, k int, rng *stats.RNG) [][]float64 {
	n := len(features)
	first := rng.Categorical(weights)
	centroids := [][]float64{stats.Clone(features[first])}
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = weights[i] * stats.SqDist(features[i], centroids[0])
	}
	for len(centroids) < k {
		var next int
		if stats.Sum(d2) <= 0 {
			next = rng.Intn(n)
		} else {
			next = rng.Categorical(d2)
		}
		c := stats.Clone(features[next])
		centroids = append(centroids, c)
		for i := range d2 {
			if d := weights[i] * stats.SqDist(features[i], c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

// weightedCentroids computes per-cluster weighted means; empty clusters
// get zero vectors.
func weightedCentroids(features [][]float64, weights []float64, assign []int, k int) [][]float64 {
	dim := len(features[0])
	sums := make([][]float64, k)
	for c := range sums {
		sums[c] = make([]float64, dim)
	}
	mass := make([]float64, k)
	for i, x := range features {
		w := weights[i]
		c := assign[i]
		for j, v := range x {
			sums[c][j] += w * v
		}
		mass[c] += w
	}
	for c := range sums {
		if mass[c] > 0 {
			stats.Scale(sums[c], 1/mass[c])
		}
	}
	return sums
}

// WeightedSSE returns the weighted K-Means objective.
func WeightedSSE(features [][]float64, weights []float64, assign []int, centroids [][]float64) float64 {
	s := 0.0
	for i, x := range features {
		s += weights[i] * stats.SqDist(x, centroids[assign[i]])
	}
	return s
}
