package kmeans

import (
	"errors"
	"fmt"
	"math"
	"runtime"

	"repro/internal/engine"
	"repro/internal/stats"
)

// RunWeighted clusters weighted points: the objective is
// Σ_i w_i·‖x_i − μ_{assign(i)}‖² and centroids are weighted means.
// It is the substrate for coreset-based clustering (internal/coreset),
// where each retained point stands for w_i original points. Weights
// must be positive and finite.
//
// RunWeighted is the same engine-driven Lloyd iteration as Run — same
// initializers (k-means++ D² sampling scaled by mass), same
// convergence policies, same frozen-sweep parallelism — with weighted
// centroid updates. Two parity contracts pin the semantics:
//
//   - unit weights reproduce Run bit-for-bit (assignments, iteration
//     count and objective bits), because every w·x with w = 1 is an
//     IEEE-754 no-op and the RNG stream is consumed identically;
//   - integer weights with Config.InitCentroids fixed match running
//     Run on the explicitly duplicated dataset from the same centroids
//     (Lloyd's assign and update steps are oblivious to whether mass
//     arrives as one weighted row or w duplicate rows).
//
// Both are enforced by weighted_test.go.
func RunWeighted(features [][]float64, weights []float64, cfg Config) (*Result, error) {
	n := len(features)
	if n == 0 {
		return nil, errors.New("kmeans: empty dataset")
	}
	if len(weights) != n {
		return nil, fmt.Errorf("kmeans: %d weights for %d points", len(weights), n)
	}
	for i, w := range weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("kmeans: weight[%d] = %v must be positive and finite", i, w)
		}
	}
	dim := len(features[0])
	for i, row := range features {
		if len(row) != dim {
			return nil, fmt.Errorf("kmeans: row %d has %d features, want %d", i, len(row), dim)
		}
	}
	if cfg.K < 1 || cfg.K > n {
		return nil, fmt.Errorf("kmeans: K=%d out of range [1,%d]", cfg.K, n)
	}
	if err := validateInitCentroids(&cfg, dim); err != nil {
		return nil, err
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	workers := cfg.Parallelism
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	obj := &lloydWeighted{
		features: features,
		weights:  weights,
		k:        cfg.K,
		assign:   initialAssign(features, weights, &cfg),
	}
	if !cfg.FullScan {
		obj.prune = newPruner(features)
	}

	er := engine.Solve(obj, engine.NewLloydSweep(obj, workers), engine.Config{
		MaxIter:  maxIter,
		Tol:      cfg.Tol,
		Budget:   cfg.Budget,
		Observer: cfg.Observer,
	})

	res := &Result{
		Assign:     obj.assign,
		Iterations: er.Iterations,
		Converged:  er.Converged,
	}
	res.Centroids = weightedCentroids(features, weights, obj.assign, cfg.K)
	res.Sizes = Sizes(obj.assign, cfg.K)
	res.Objective = WeightedSSE(features, weights, obj.assign, res.Centroids)
	return res, nil
}

// lloydWeighted is the weighted K-Means objective for the descent
// engine: like lloyd, but Freeze recomputes weighted-mean centroids and
// Delta/Value carry each row's mass. Scoring (nearest frozen centroid)
// is mass-independent — a weighted row goes wherever its w duplicates
// would all go.
type lloydWeighted struct {
	features [][]float64
	weights  []float64
	k        int
	assign   []int
	frozen   [][]float64
	prune    *pruner // nil → naive full scan every row
}

func (l *lloydWeighted) N() int                   { return len(l.features) }
func (l *lloydWeighted) K() int                   { return l.k }
func (l *lloydWeighted) Current(i int) int        { return l.assign[i] }
func (l *lloydWeighted) Move(i, from, to int)     { l.assign[i] = to }
func (l *lloydWeighted) BestMove(i, from int) int { return l.nearest(i) }

// nearest mirrors lloyd.nearest: scoring is mass-independent, so the
// weighted path shares the pruner (bounds are plain Euclidean
// distances; weights never enter the nearest-centroid decision).
func (l *lloydWeighted) nearest(i int) int {
	if l.prune != nil {
		return l.prune.bestMove(i, l.assign[i], l.frozen)
	}
	return nearestCentroid(l.features[i], l.frozen)
}
func (l *lloydWeighted) Delta(i, from, to int) float64 {
	x := l.features[i]
	return l.weights[i] * (stats.SqDist(x, l.frozen[to]) - stats.SqDist(x, l.frozen[from]))
}

// Value is the weighted SSE against the frozen centroids — the
// quantity the Tol policy compares between iterations.
func (l *lloydWeighted) Value() float64 {
	return WeightedSSE(l.features, l.weights, l.assign, l.frozen)
}

// NewSnapshot: the frozen-centroid view IS the snapshot; Freeze
// recomputes the weighted means from the live assignment.
func (l *lloydWeighted) NewSnapshot() engine.Snapshot { return (*lloydWeightedSnap)(l) }

type lloydWeightedSnap lloydWeighted

func (s *lloydWeightedSnap) Freeze() {
	s.frozen = weightedCentroids(s.features, s.weights, s.assign, s.k)
	if s.prune != nil {
		s.prune.refresh(s.frozen, s.assign)
	}
}

func (s *lloydWeightedSnap) BestMove(i, from int) int {
	return (*lloydWeighted)(s).nearest(i)
}

// nearestCentroid mirrors the historical assignAll rule shared by the
// weighted and unweighted objectives: all K centroids are candidates
// (including zero-vector centroids of empty clusters), ties keep the
// lowest cluster index.
func nearestCentroid(x []float64, centroids [][]float64) int {
	best, bestD := 0, math.Inf(1)
	for c, cen := range centroids {
		if d := stats.SqDist(x, cen); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// weightedCentroids computes per-cluster weighted means; empty clusters
// get zero vectors. With unit weights it is bit-identical to
// computeCentroids (w·v multiplications are exact and the mass
// accumulates the same integer the row count would).
func weightedCentroids(features [][]float64, weights []float64, assign []int, k int) [][]float64 {
	dim := len(features[0])
	sums := make([][]float64, k)
	for c := range sums {
		sums[c] = make([]float64, dim)
	}
	mass := make([]float64, k)
	for i, x := range features {
		w := weights[i]
		c := assign[i]
		for j, v := range x {
			sums[c][j] += w * v
		}
		mass[c] += w
	}
	for c := range sums {
		if mass[c] > 0 {
			stats.Scale(sums[c], 1/mass[c])
		}
	}
	return sums
}

// WeightedSSE returns the weighted K-Means objective.
func WeightedSSE(features [][]float64, weights []float64, assign []int, centroids [][]float64) float64 {
	s := 0.0
	for i, x := range features {
		s += weights[i] * stats.SqDist(x, centroids[assign[i]])
	}
	return s
}
