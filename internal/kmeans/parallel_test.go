package kmeans

import (
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/stats"
)

func gaussianBlobs(seed int64, n, k int) [][]float64 {
	rng := stats.NewRNG(seed)
	features := make([][]float64, n)
	for i := range features {
		c := float64(i % k)
		features[i] = []float64{rng.Gaussian(c*5, 1), rng.Gaussian(-c*3, 1)}
	}
	return features
}

// TestParallelLloydDeterminism: scoring against frozen centroids is
// pure, so every Parallelism setting must reproduce the sequential
// Lloyd run exactly.
func TestParallelLloydDeterminism(t *testing.T) {
	features := gaussianBlobs(17, 800, 5)
	var ref *Result
	for _, p := range []int{0, 1, 2, 4, -1} {
		res, err := Run(features, Config{K: 5, Seed: 2, Parallelism: p})
		if err != nil {
			t.Fatalf("parallelism=%d: %v", p, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Objective != ref.Objective || res.Iterations != ref.Iterations || res.Converged != ref.Converged {
			t.Fatalf("parallelism=%d diverged: objective %v vs %v, iters %d vs %d",
				p, res.Objective, ref.Objective, res.Iterations, ref.Iterations)
		}
		for i := range res.Assign {
			if res.Assign[i] != ref.Assign[i] {
				t.Fatalf("parallelism=%d: assignment mismatch at row %d", p, i)
			}
		}
	}
}

// TestBudgetStopsEarly: a tiny wall-clock budget ends the run after
// one iteration, reported as not converged.
func TestBudgetStopsEarly(t *testing.T) {
	features := gaussianBlobs(23, 2000, 12)
	res, err := Run(features, Config{K: 12, Seed: 4, Budget: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 && !res.Converged {
		t.Fatalf("budgeted run should stop at the first iteration boundary, ran %d", res.Iterations)
	}
	if res.Converged && res.Iterations > 2 {
		t.Fatalf("unexpectedly converged at iteration %d under a 1ns budget", res.Iterations)
	}
}

// TestObserverReportsLloydIterations: the engine observer fires once
// per Lloyd iteration with a decreasing-or-equal frozen-centroid SSE.
func TestObserverReportsLloydIterations(t *testing.T) {
	features := gaussianBlobs(29, 500, 4)
	var events []engine.IterEvent
	res, err := Run(features, Config{K: 4, Seed: 6, Observer: func(ev engine.IterEvent) {
		events = append(events, ev)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != res.Iterations {
		t.Fatalf("observer saw %d events for %d iterations", len(events), res.Iterations)
	}
	if last := events[len(events)-1]; res.Converged && last.Moves != 0 {
		t.Fatalf("converged run's final iteration made %d moves", last.Moves)
	}
}
