package kmeans

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func blobFeatures(seed int64, n, blobs, dim int) [][]float64 {
	rng := stats.NewRNG(seed)
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.Gaussian(float64((i%blobs)*(j+1))*8, 0.7)
		}
		out[i] = row
	}
	return out
}

// TestRunWeightedUnitParity: RunWeighted with all-1 weights must
// reproduce Run exactly — assignments, iterations, centroid and
// objective bits — for every initializer and under Tol/parallel
// variants. The weighted solver is a strict generalization, not a
// second implementation.
func TestRunWeightedUnitParity(t *testing.T) {
	features := blobFeatures(3, 300, 4, 3)
	ones := make([]float64, len(features))
	for i := range ones {
		ones[i] = 1
	}
	configs := map[string]Config{
		"kmpp":      {K: 4, Seed: 5},
		"partition": {K: 4, Seed: 5, Init: RandomPartition},
		"points":    {K: 4, Seed: 5, Init: RandomPoints},
		"tol":       {K: 4, Seed: 5, Tol: 1e-4},
		"par3":      {K: 4, Seed: 5, Parallelism: 3},
		"maxiter":   {K: 5, Seed: 2, MaxIter: 4},
	}
	for name, cfg := range configs {
		ref, err := Run(features, cfg)
		if err != nil {
			t.Fatalf("%s: Run: %v", name, err)
		}
		got, err := RunWeighted(features, ones, cfg)
		if err != nil {
			t.Fatalf("%s: RunWeighted: %v", name, err)
		}
		if got.Iterations != ref.Iterations || got.Converged != ref.Converged {
			t.Errorf("%s: iterations %d/%v vs %d/%v", name, got.Iterations, got.Converged, ref.Iterations, ref.Converged)
		}
		for i := range ref.Assign {
			if got.Assign[i] != ref.Assign[i] {
				t.Fatalf("%s: assign[%d] = %d, want %d", name, i, got.Assign[i], ref.Assign[i])
			}
		}
		if math.Float64bits(got.Objective) != math.Float64bits(ref.Objective) {
			t.Errorf("%s: objective bits differ: %v vs %v", name, got.Objective, ref.Objective)
		}
		for c := range ref.Centroids {
			for j := range ref.Centroids[c] {
				if math.Float64bits(got.Centroids[c][j]) != math.Float64bits(ref.Centroids[c][j]) {
					t.Fatalf("%s: centroid [%d][%d] %v vs %v", name, c, j, got.Centroids[c][j], ref.Centroids[c][j])
				}
			}
		}
	}
}

// TestRunWeightedDuplicationParity: integer weights must match running
// the plain solver on the explicitly duplicated dataset. Lloyd's
// assign and update steps cannot tell whether mass arrives as one
// weighted row or w duplicate rows, so from a shared set of initial
// centroids (Config.InitCentroids) the two runs are the same descent.
func TestRunWeightedDuplicationParity(t *testing.T) {
	features := blobFeatures(9, 180, 3, 2)
	rng := stats.NewRNG(31)
	w := make([]int, len(features))
	wf := make([]float64, len(features))
	var dup [][]float64
	var src []int
	for i := range features {
		w[i] = 1 + rng.Intn(4)
		wf[i] = float64(w[i])
		for r := 0; r < w[i]; r++ {
			dup = append(dup, features[i])
			src = append(src, i)
		}
	}
	const k = 3
	// Arbitrary-but-fixed initial centroids shared by both runs.
	init := [][]float64{features[0], features[1], features[2]}

	wres, err := RunWeighted(features, wf, Config{K: k, InitCentroids: init})
	if err != nil {
		t.Fatal(err)
	}
	dres, err := Run(dup, Config{K: k, InitCentroids: init})
	if err != nil {
		t.Fatal(err)
	}
	for j, i := range src {
		if dres.Assign[j] != wres.Assign[i] {
			t.Fatalf("duplicate %d (source %d): cluster %d, weighted run says %d", j, i, dres.Assign[j], wres.Assign[i])
		}
	}
	if rel := math.Abs(wres.Objective-dres.Objective) / (1 + dres.Objective); rel > 1e-9 {
		t.Errorf("objective %v (weighted) vs %v (duplicated): rel %v", wres.Objective, dres.Objective, rel)
	}
	if wres.Iterations != dres.Iterations {
		t.Errorf("iterations %d vs %d", wres.Iterations, dres.Iterations)
	}
	for c := range wres.Centroids {
		for j := range wres.Centroids[c] {
			if math.Abs(wres.Centroids[c][j]-dres.Centroids[c][j]) > 1e-9 {
				t.Fatalf("centroid [%d][%d] %v vs %v", c, j, wres.Centroids[c][j], dres.Centroids[c][j])
			}
		}
	}
}

// TestInitCentroidsValidation: the override must be shape-checked.
func TestInitCentroidsValidation(t *testing.T) {
	features := blobFeatures(1, 20, 2, 2)
	if _, err := Run(features, Config{K: 3, InitCentroids: [][]float64{{0, 0}}}); err == nil {
		t.Error("wrong centroid count accepted")
	}
	if _, err := Run(features, Config{K: 2, InitCentroids: [][]float64{{0, 0}, {1}}}); err == nil {
		t.Error("ragged centroid accepted")
	}
	ones := make([]float64, len(features))
	for i := range ones {
		ones[i] = 1
	}
	if _, err := RunWeighted(features, ones, Config{K: 2, InitCentroids: [][]float64{{0}, {1}}}); err == nil {
		t.Error("wrong-dim centroids accepted by RunWeighted")
	}
}

// TestRunWeightedParallelDeterminism: like the unweighted solver, the
// weighted Lloyd sweep must be bit-identical for every worker count.
func TestRunWeightedParallelDeterminism(t *testing.T) {
	features := blobFeatures(7, 400, 5, 3)
	rng := stats.NewRNG(2)
	wf := make([]float64, len(features))
	for i := range wf {
		wf[i] = 0.5 + 2*rng.Float64()
	}
	ref, err := RunWeighted(features, wf, Config{K: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 7} {
		got, err := RunWeighted(features, wf, Config{K: 5, Seed: 4, Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Assign {
			if got.Assign[i] != ref.Assign[i] {
				t.Fatalf("workers=%d: assign[%d] differs", workers, i)
			}
		}
		if math.Float64bits(got.Objective) != math.Float64bits(ref.Objective) {
			t.Errorf("workers=%d: objective bits differ", workers)
		}
	}
}
