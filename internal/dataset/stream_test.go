package dataset

import (
	"io"
	"strings"
	"testing"
)

const streamCSV = `x,y,g,age,junk
1,2,a,30,zz
3,4,b,40,zz
5,6,a,50,zz
7,8,c,60,zz
9,10,b,70,zz
`

func streamSpec() CSVSpec {
	return CSVSpec{
		Features:             []string{"x", "y"},
		CategoricalSensitive: []string{"g"},
		NumericSensitive:     []string{"age"},
	}
}

// TestCSVStreamChunksMatchReadCSV: concatenating the chunks must
// reproduce ReadCSV's rows, with codes stable across chunk boundaries.
func TestCSVStreamChunksMatchReadCSV(t *testing.T) {
	full, err := ReadCSV(strings.NewReader(streamCSV), streamSpec())
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewCSVStream(strings.NewReader(streamCSV), streamSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var rows int
	valueOf := map[int]string{} // code -> value, must stay stable
	for {
		chunk, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if chunk.N() > 2 {
			t.Fatalf("chunk has %d rows, want <= 2", chunk.N())
		}
		g := chunk.SensitiveByName("g")
		age := chunk.SensitiveByName("age")
		for i := 0; i < chunk.N(); i++ {
			for j := range chunk.Features[i] {
				if chunk.Features[i][j] != full.Features[rows][j] {
					t.Fatalf("row %d feature %d: %v vs %v", rows, j, chunk.Features[i][j], full.Features[rows][j])
				}
			}
			val := g.Values[g.Codes[i]]
			fullG := full.SensitiveByName("g")
			if want := fullG.Values[fullG.Codes[rows]]; val != want {
				t.Fatalf("row %d categorical %q, want %q", rows, val, want)
			}
			if prev, ok := valueOf[g.Codes[i]]; ok && prev != val {
				t.Fatalf("code %d mapped to %q then %q across chunks", g.Codes[i], prev, val)
			}
			valueOf[g.Codes[i]] = val
			if age.Reals[i] != full.SensitiveByName("age").Reals[rows] {
				t.Fatalf("row %d age mismatch", rows)
			}
			rows++
		}
	}
	if rows != full.N() {
		t.Fatalf("streamed %d rows, want %d", rows, full.N())
	}
	if st.Rows() != full.N() {
		t.Errorf("Rows() = %d, want %d", st.Rows(), full.N())
	}
	// Exhausted stream keeps returning EOF.
	if _, err := st.Next(); err != io.EOF {
		t.Errorf("post-EOF Next: %v", err)
	}
}

// TestCSVStreamDomainGrowth: a value first seen in a late chunk gets a
// fresh code; earlier codes are untouched, and each chunk's Values
// slice is an independent copy.
func TestCSVStreamDomainGrowth(t *testing.T) {
	st, err := NewCSVStream(strings.NewReader(streamCSV), streamSpec(), 3)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := st.Next()
	if err != nil {
		t.Fatal(err)
	}
	g1 := c1.SensitiveByName("g")
	if len(g1.Values) != 2 { // a, b seen in rows 1-3
		t.Fatalf("first chunk domain %v, want [a b]", g1.Values)
	}
	c2, err := st.Next()
	if err != nil {
		t.Fatal(err)
	}
	g2 := c2.SensitiveByName("g")
	if len(g2.Values) != 3 { // c appears in chunk 2
		t.Fatalf("second chunk domain %v, want 3 values", g2.Values)
	}
	if g2.Values[0] != g1.Values[0] || g2.Values[1] != g1.Values[1] {
		t.Fatalf("domain prefix changed: %v vs %v", g2.Values, g1.Values)
	}
	// Mutating chunk 1's copy must not leak into the stream's domain.
	g1.Values[0] = "mutated"
	if g2.Values[0] == "mutated" {
		t.Fatal("chunks share Values backing arrays")
	}
}

func TestCSVStreamErrors(t *testing.T) {
	if _, err := NewCSVStream(strings.NewReader(streamCSV), CSVSpec{Features: []string{"nope"}}, 2); err == nil {
		t.Error("missing column accepted")
	}
	bad := "x,g\nnotanumber,a\n"
	st, err := NewCSVStream(strings.NewReader(bad), CSVSpec{Features: []string{"x"}, CategoricalSensitive: []string{"g"}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Next(); err == nil {
		t.Error("unparseable feature accepted")
	}
	// Empty body: immediate EOF.
	st2, err := NewCSVStream(strings.NewReader("x,g\n"), CSVSpec{Features: []string{"x"}, CategoricalSensitive: []string{"g"}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Next(); err != io.EOF {
		t.Errorf("empty stream Next: %v", err)
	}
}
