package dataset

import (
	"io"
	"strings"
	"testing"
)

const streamCSV = `x,y,g,age,junk
1,2,a,30,zz
3,4,b,40,zz
5,6,a,50,zz
7,8,c,60,zz
9,10,b,70,zz
`

func streamSpec() CSVSpec {
	return CSVSpec{
		Features:             []string{"x", "y"},
		CategoricalSensitive: []string{"g"},
		NumericSensitive:     []string{"age"},
	}
}

// TestCSVStreamChunksMatchReadCSV: concatenating the chunks must
// reproduce ReadCSV's rows, with codes stable across chunk boundaries.
func TestCSVStreamChunksMatchReadCSV(t *testing.T) {
	full, err := ReadCSV(strings.NewReader(streamCSV), streamSpec())
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewCSVStream(strings.NewReader(streamCSV), streamSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var rows int
	valueOf := map[int]string{} // code -> value, must stay stable
	for {
		chunk, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if chunk.N() > 2 {
			t.Fatalf("chunk has %d rows, want <= 2", chunk.N())
		}
		g := chunk.SensitiveByName("g")
		age := chunk.SensitiveByName("age")
		for i := 0; i < chunk.N(); i++ {
			for j := range chunk.Features[i] {
				if chunk.Features[i][j] != full.Features[rows][j] {
					t.Fatalf("row %d feature %d: %v vs %v", rows, j, chunk.Features[i][j], full.Features[rows][j])
				}
			}
			val := g.Values[g.Codes[i]]
			fullG := full.SensitiveByName("g")
			if want := fullG.Values[fullG.Codes[rows]]; val != want {
				t.Fatalf("row %d categorical %q, want %q", rows, val, want)
			}
			if prev, ok := valueOf[g.Codes[i]]; ok && prev != val {
				t.Fatalf("code %d mapped to %q then %q across chunks", g.Codes[i], prev, val)
			}
			valueOf[g.Codes[i]] = val
			if age.Reals[i] != full.SensitiveByName("age").Reals[rows] {
				t.Fatalf("row %d age mismatch", rows)
			}
			rows++
		}
	}
	if rows != full.N() {
		t.Fatalf("streamed %d rows, want %d", rows, full.N())
	}
	if st.Rows() != full.N() {
		t.Errorf("Rows() = %d, want %d", st.Rows(), full.N())
	}
	// Exhausted stream keeps returning EOF.
	if _, err := st.Next(); err != io.EOF {
		t.Errorf("post-EOF Next: %v", err)
	}
}

// TestCSVStreamDomainGrowth: a value first seen in a late chunk gets a
// fresh code; earlier codes are untouched, and each chunk's Values
// slice is an independent copy.
func TestCSVStreamDomainGrowth(t *testing.T) {
	st, err := NewCSVStream(strings.NewReader(streamCSV), streamSpec(), 3)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := st.Next()
	if err != nil {
		t.Fatal(err)
	}
	g1 := c1.SensitiveByName("g")
	if len(g1.Values) != 2 { // a, b seen in rows 1-3
		t.Fatalf("first chunk domain %v, want [a b]", g1.Values)
	}
	c2, err := st.Next()
	if err != nil {
		t.Fatal(err)
	}
	g2 := c2.SensitiveByName("g")
	if len(g2.Values) != 3 { // c appears in chunk 2
		t.Fatalf("second chunk domain %v, want 3 values", g2.Values)
	}
	if g2.Values[0] != g1.Values[0] || g2.Values[1] != g1.Values[1] {
		t.Fatalf("domain prefix changed: %v vs %v", g2.Values, g1.Values)
	}
	// Mutating chunk 1's copy must not leak into the stream's domain.
	g1.Values[0] = "mutated"
	if g2.Values[0] == "mutated" {
		t.Fatal("chunks share Values backing arrays")
	}
}

func TestCSVStreamErrors(t *testing.T) {
	if _, err := NewCSVStream(strings.NewReader(streamCSV), CSVSpec{Features: []string{"nope"}}, 2); err == nil {
		t.Error("missing column accepted")
	}
	bad := "x,g\nnotanumber,a\n"
	st, err := NewCSVStream(strings.NewReader(bad), CSVSpec{Features: []string{"x"}, CategoricalSensitive: []string{"g"}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Next(); err == nil {
		t.Error("unparseable feature accepted")
	}
	// Empty body: immediate EOF.
	st2, err := NewCSVStream(strings.NewReader("x,g\n"), CSVSpec{Features: []string{"x"}, CategoricalSensitive: []string{"g"}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Next(); err != io.EOF {
		t.Errorf("empty stream Next: %v", err)
	}
}

// TestCSVStreamEdgeCases covers the degenerate inputs a long-running
// ingester actually meets: ragged rows, empty files, header-only files
// and a chunk boundary landing exactly on EOF.
func TestCSVStreamEdgeCases(t *testing.T) {
	t.Run("empty file", func(t *testing.T) {
		if _, err := NewCSVStream(strings.NewReader(""), streamSpec(), 2); err == nil {
			t.Error("empty file produced a stream (no header to validate)")
		}
	})

	t.Run("header only", func(t *testing.T) {
		st, err := NewCSVStream(strings.NewReader("x,y,g,age,junk\n"), streamSpec(), 2)
		if err != nil {
			t.Fatal(err)
		}
		if chunk, err := st.Next(); err != io.EOF {
			t.Errorf("Next on a header-only file = (%v, %v), want (nil, io.EOF)", chunk, err)
		}
		if chunk, err := st.Next(); err != io.EOF {
			t.Errorf("second Next = (%v, %v), want (nil, io.EOF)", chunk, err)
		}
		if st.Rows() != 0 {
			t.Errorf("Rows() = %d for a header-only file", st.Rows())
		}
	})

	t.Run("ragged short row", func(t *testing.T) {
		src := "x,y,g,age,junk\n1,2,a,30,zz\n3,4\n5,6,a,50,zz\n"
		st, err := NewCSVStream(strings.NewReader(src), streamSpec(), 10)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Next(); err == nil || err == io.EOF {
			t.Errorf("ragged short row gave err=%v, want a field-count error", err)
		}
	})

	t.Run("ragged long row", func(t *testing.T) {
		src := "x,y,g,age,junk\n1,2,a,30,zz,EXTRA\n"
		st, err := NewCSVStream(strings.NewReader(src), streamSpec(), 10)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Next(); err == nil || err == io.EOF {
			t.Errorf("ragged long row gave err=%v, want a field-count error", err)
		}
	})

	t.Run("chunk boundary exactly on EOF", func(t *testing.T) {
		// 4 data rows, chunk size 2: two full chunks, then a clean EOF
		// from a third Next that reads nothing.
		src := "x,y,g,age,junk\n" +
			"1,2,a,30,zz\n" + "3,4,b,40,zz\n" + "5,6,a,50,zz\n" + "7,8,c,60,zz\n"
		st, err := NewCSVStream(strings.NewReader(src), streamSpec(), 2)
		if err != nil {
			t.Fatal(err)
		}
		var sizes []int
		for {
			chunk, err := st.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			sizes = append(sizes, chunk.N())
		}
		if len(sizes) != 2 || sizes[0] != 2 || sizes[1] != 2 {
			t.Errorf("chunk sizes = %v, want [2 2]", sizes)
		}
		if st.Rows() != 4 {
			t.Errorf("Rows() = %d, want 4", st.Rows())
		}
		// And the stream stays terminated.
		if _, err := st.Next(); err != io.EOF {
			t.Errorf("Next after EOF = %v, want io.EOF", err)
		}
	})

	t.Run("missing trailing newline on boundary", func(t *testing.T) {
		src := "x,y,g,age,junk\n1,2,a,30,zz\n3,4,b,40,zz"
		st, err := NewCSVStream(strings.NewReader(src), streamSpec(), 2)
		if err != nil {
			t.Fatal(err)
		}
		chunk, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if chunk.N() != 2 {
			t.Errorf("chunk has %d rows, want 2", chunk.N())
		}
		if _, err := st.Next(); err != io.EOF {
			t.Errorf("Next after unterminated final row = %v, want io.EOF", err)
		}
	})
}

// TestDomainIndexFrom covers the snapshot-rebuild path model artifacts
// rely on.
func TestDomainIndexFrom(t *testing.T) {
	dom, err := NewDomainIndexFrom([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if dom.Len() != 3 {
		t.Errorf("Len = %d, want 3", dom.Len())
	}
	if c, ok := dom.Lookup("b"); !ok || c != 1 {
		t.Errorf("Lookup(b) = (%d,%v), want (1,true)", c, ok)
	}
	if _, ok := dom.Lookup("z"); ok {
		t.Error("Lookup(z) found an absent value")
	}
	if c := dom.Code("z"); c != 3 {
		t.Errorf("Code(z) = %d, want 3 (appended)", c)
	}
	if c := dom.Code("a"); c != 0 {
		t.Errorf("Code(a) = %d, want 0 (stable)", c)
	}
	if _, err := NewDomainIndexFrom([]string{"a", "b", "a"}); err == nil {
		t.Error("duplicate snapshot values accepted")
	}
}
