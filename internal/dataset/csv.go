package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSVSpec tells ReadCSV how to interpret columns of a headed CSV file.
// Columns not listed in any of the three sets are ignored.
type CSVSpec struct {
	// Features are the names of numeric non-sensitive columns.
	Features []string
	// CategoricalSensitive are the names of categorical sensitive columns.
	CategoricalSensitive []string
	// NumericSensitive are the names of numeric sensitive columns.
	NumericSensitive []string
}

// ReadCSV parses a headed CSV stream into a Dataset according to spec.
// Feature and numeric-sensitive cells must parse as floats; whitespace
// around cells is trimmed.
func ReadCSV(r io.Reader, spec CSVSpec) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	col := make(map[string]int, len(header))
	for i, h := range header {
		col[strings.TrimSpace(h)] = i
	}
	locate := func(names []string) ([]int, error) {
		idx := make([]int, len(names))
		for i, name := range names {
			j, ok := col[name]
			if !ok {
				return nil, fmt.Errorf("dataset: CSV is missing column %q", name)
			}
			idx[i] = j
		}
		return idx, nil
	}
	fIdx, err := locate(spec.Features)
	if err != nil {
		return nil, err
	}
	cIdx, err := locate(spec.CategoricalSensitive)
	if err != nil {
		return nil, err
	}
	nIdx, err := locate(spec.NumericSensitive)
	if err != nil {
		return nil, err
	}

	b := NewBuilder(spec.Features...)
	for _, name := range spec.CategoricalSensitive {
		b.AddCategoricalSensitive(name)
	}
	for _, name := range spec.NumericSensitive {
		b.AddNumericSensitive(name)
	}

	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line+1, err)
		}
		line++
		feats := make([]float64, len(fIdx))
		for i, j := range fIdx {
			v, err := strconv.ParseFloat(strings.TrimSpace(rec[j]), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d column %q: %w", line, spec.Features[i], err)
			}
			feats[i] = v
		}
		cats := make([]string, len(cIdx))
		for i, j := range cIdx {
			cats[i] = strings.TrimSpace(rec[j])
		}
		nums := make([]float64, len(nIdx))
		for i, j := range nIdx {
			v, err := strconv.ParseFloat(strings.TrimSpace(rec[j]), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d column %q: %w", line, spec.NumericSensitive[i], err)
			}
			nums[i] = v
		}
		b.Row(feats, cats, nums)
	}
	return b.Build()
}

// WriteCSV serializes a Dataset as headed CSV: feature columns first,
// then sensitive columns (categorical values written as strings).
func WriteCSV(w io.Writer, d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	header := append([]string(nil), d.FeatureNames...)
	if len(header) == 0 {
		for j := 0; j < d.Dim(); j++ {
			header = append(header, fmt.Sprintf("f%d", j))
		}
	}
	for _, s := range d.Sensitive {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := 0; i < d.N(); i++ {
		rec := make([]string, 0, len(header))
		for _, v := range d.Features[i] {
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		for _, s := range d.Sensitive {
			if s.Kind == Categorical {
				rec = append(rec, s.Values[s.Codes[i]])
			} else {
				rec = append(rec, strconv.FormatFloat(s.Reals[i], 'g', -1, 64))
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
