package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func buildSmall(t *testing.T) *Dataset {
	t.Helper()
	b := NewBuilder("x", "y")
	b.AddCategoricalSensitive("gender")
	b.AddNumericSensitive("age")
	b.Row([]float64{1, 2}, []string{"f"}, []float64{30})
	b.Row([]float64{3, 4}, []string{"m"}, []float64{40})
	b.Row([]float64{5, 6}, []string{"f"}, []float64{50})
	b.Row([]float64{7, 8}, []string{"f"}, []float64{60})
	ds, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return ds
}

func TestBuilderEncodesDomainsSorted(t *testing.T) {
	ds := buildSmall(t)
	g := ds.SensitiveByName("gender")
	if g == nil {
		t.Fatal("missing gender attribute")
	}
	if g.Values[0] != "f" || g.Values[1] != "m" {
		t.Errorf("domain not sorted: %v", g.Values)
	}
	wantCodes := []int{0, 1, 0, 0}
	for i, c := range g.Codes {
		if c != wantCodes[i] {
			t.Errorf("code[%d] = %d, want %d", i, c, wantCodes[i])
		}
	}
	if g.Cardinality() != 2 {
		t.Errorf("Cardinality = %d", g.Cardinality())
	}
	a := ds.SensitiveByName("age")
	if a.Kind != Numeric || a.Cardinality() != 1 || a.Len() != 4 {
		t.Errorf("age attribute misconfigured: %+v", a)
	}
}

func TestFractions(t *testing.T) {
	ds := buildSmall(t)
	fr := ds.Fractions(ds.SensitiveByName("gender"))
	if math.Abs(fr[0]-0.75) > 1e-15 || math.Abs(fr[1]-0.25) > 1e-15 {
		t.Errorf("Fractions = %v, want [0.75 0.25]", fr)
	}
	sum := 0.0
	for _, v := range fr {
		sum += v
	}
	if math.Abs(sum-1) > 1e-15 {
		t.Errorf("fractions sum to %v", sum)
	}
}

func TestFractionsPanicsOnNumeric(t *testing.T) {
	ds := buildSmall(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for numeric attribute")
		}
	}()
	ds.Fractions(ds.SensitiveByName("age"))
}

func TestValidateCatchesCorruption(t *testing.T) {
	cases := map[string]func(*Dataset){
		"ragged features":   func(d *Dataset) { d.Features[1] = []float64{1} },
		"NaN feature":       func(d *Dataset) { d.Features[0][0] = math.NaN() },
		"Inf feature":       func(d *Dataset) { d.Features[0][1] = math.Inf(1) },
		"code out of range": func(d *Dataset) { d.SensitiveByName("gender").Codes[2] = 9 },
		"negative code":     func(d *Dataset) { d.SensitiveByName("gender").Codes[0] = -1 },
		"short codes":       func(d *Dataset) { g := d.SensitiveByName("gender"); g.Codes = g.Codes[:2] },
		"NaN sensitive":     func(d *Dataset) { d.SensitiveByName("age").Reals[0] = math.NaN() },
		"dup attribute":     func(d *Dataset) { d.Sensitive = append(d.Sensitive, d.Sensitive[0]) },
		"empty domain":      func(d *Dataset) { d.SensitiveByName("gender").Values = nil },
		"empty name":        func(d *Dataset) { d.SensitiveByName("gender").Name = "" },
	}
	for name, corrupt := range cases {
		ds := buildSmall(t)
		corrupt(ds)
		if err := ds.Validate(); err == nil {
			t.Errorf("%s: Validate accepted corrupted dataset", name)
		}
	}
}

func TestSubset(t *testing.T) {
	ds := buildSmall(t)
	sub := ds.Subset([]int{2, 0})
	if sub.N() != 2 {
		t.Fatalf("N = %d", sub.N())
	}
	if sub.Features[0][0] != 5 || sub.Features[1][0] != 1 {
		t.Errorf("features not reordered: %v", sub.Features)
	}
	g := sub.SensitiveByName("gender")
	if g.Codes[0] != 0 || g.Codes[1] != 0 {
		t.Errorf("codes = %v", g.Codes)
	}
	a := sub.SensitiveByName("age")
	if a.Reals[0] != 50 || a.Reals[1] != 30 {
		t.Errorf("reals = %v", a.Reals)
	}
	if err := sub.Validate(); err != nil {
		t.Errorf("subset invalid: %v", err)
	}
}

func TestWithSensitive(t *testing.T) {
	ds := buildSmall(t)
	only, err := ds.WithSensitive("age")
	if err != nil {
		t.Fatal(err)
	}
	if len(only.Sensitive) != 1 || only.Sensitive[0].Name != "age" {
		t.Errorf("unexpected sensitive set: %v", only.Sensitive)
	}
	if only.N() != ds.N() {
		t.Errorf("row count changed")
	}
	if _, err := ds.WithSensitive("nope"); err == nil {
		t.Error("expected error for unknown attribute")
	}
}

func TestStandardize(t *testing.T) {
	ds := buildSmall(t)
	means, stds := ds.Standardize()
	if math.Abs(means[0]-4) > 1e-12 {
		t.Errorf("mean[0] = %v, want 4", means[0])
	}
	if stds[0] <= 0 {
		t.Errorf("std[0] = %v", stds[0])
	}
	// Columns should now have mean 0, std 1.
	for j := 0; j < ds.Dim(); j++ {
		s, sq := 0.0, 0.0
		for i := 0; i < ds.N(); i++ {
			v := ds.Features[i][j]
			s += v
			sq += v * v
		}
		n := float64(ds.N())
		if math.Abs(s/n) > 1e-12 {
			t.Errorf("column %d mean %v after standardize", j, s/n)
		}
		if math.Abs(sq/n-1) > 1e-12 {
			t.Errorf("column %d variance %v after standardize", j, sq/n)
		}
	}
}

func TestStandardizeConstantColumn(t *testing.T) {
	b := NewBuilder("c")
	b.Row([]float64{5}, nil, nil)
	b.Row([]float64{5}, nil, nil)
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, stds := ds.Standardize()
	if stds[0] != 0 {
		t.Errorf("std = %v, want 0", stds[0])
	}
	if ds.Features[0][0] != 0 || ds.Features[1][0] != 0 {
		t.Errorf("constant column should become zero, got %v", ds.Features)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := buildSmall(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf, CSVSpec{
		Features:             []string{"x", "y"},
		CategoricalSensitive: []string{"gender"},
		NumericSensitive:     []string{"age"},
	})
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.N() != ds.N() || got.Dim() != ds.Dim() {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", got.N(), got.Dim(), ds.N(), ds.Dim())
	}
	for i := range ds.Features {
		for j := range ds.Features[i] {
			if got.Features[i][j] != ds.Features[i][j] {
				t.Errorf("feature[%d][%d] = %v, want %v", i, j, got.Features[i][j], ds.Features[i][j])
			}
		}
	}
	g1, g2 := ds.SensitiveByName("gender"), got.SensitiveByName("gender")
	for i := range g1.Codes {
		if g1.Values[g1.Codes[i]] != g2.Values[g2.Codes[i]] {
			t.Errorf("gender[%d] mismatch", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	spec := CSVSpec{Features: []string{"x"}, CategoricalSensitive: []string{"g"}}
	cases := map[string]string{
		"missing column":  "x,h\n1,a\n",
		"bad float":       "x,g\nnope,a\n",
		"ragged record":   "x,g\n1,a,extra\n",
		"empty (no rows)": "", // header read fails
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), spec); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestBuilderPanics(t *testing.T) {
	b := NewBuilder("x")
	b.AddCategoricalSensitive("g")
	b.Row([]float64{1}, []string{"a"}, nil)
	for name, f := range map[string]func(){
		"late categorical": func() { b.AddCategoricalSensitive("h") },
		"late numeric":     func() { b.AddNumericSensitive("n") },
		"wrong feats":      func() { b.Row([]float64{1, 2}, []string{"a"}, nil) },
		"wrong cats":       func() { b.Row([]float64{1}, nil, nil) },
		"wrong nums":       func() { b.Row([]float64{1}, []string{"a"}, []float64{3}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
