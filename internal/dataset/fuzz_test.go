package dataset

import (
	"strings"
	"testing"
)

// FuzzReadCSV checks the CSV loader never panics on malformed input —
// it must either return a valid dataset or an error.
func FuzzReadCSV(f *testing.F) {
	f.Add("x,g\n1,a\n2,b\n")
	f.Add("x,g\n")
	f.Add("")
	f.Add("x,g\nnope,a\n")
	f.Add("x,g\n1,a,extra\n")
	f.Add("x,g\n1e309,a\n") // overflows to +Inf
	f.Add("g,x\n a , 5 \n")
	f.Fuzz(func(t *testing.T, input string) {
		ds, err := ReadCSV(strings.NewReader(input), CSVSpec{
			Features:             []string{"x"},
			CategoricalSensitive: []string{"g"},
		})
		if err != nil {
			return
		}
		if verr := ds.Validate(); verr != nil {
			t.Fatalf("ReadCSV returned invalid dataset for %q: %v", input, verr)
		}
	})
}
