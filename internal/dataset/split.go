package dataset

import (
	"bytes"
	"fmt"
	"io"
	"os"
)

// ByteRange is a half-open [Start, End) byte span of a file.
type ByteRange struct {
	Start, End int64
}

// Len returns the number of bytes in the range.
func (r ByteRange) Len() int64 { return r.End - r.Start }

// CSVShards describes a headed CSV file split on row boundaries into
// independently readable byte ranges, so multiple goroutines (or
// processes) can ingest disjoint parts of one file in parallel — the
// sharded counterpart of a single CSVStream. Build one with SplitCSV,
// then Open each shard as its own chunked stream.
//
// Every data row of the file belongs to exactly one range; ranges can
// be empty when the file has fewer rows than shards. The header line is
// replayed to every shard on Open, so each shard stream validates the
// same columns independently.
type CSVShards struct {
	// Path is the file the ranges index into.
	Path string
	// Ranges are the per-shard data spans, in file order. Each starts
	// at the beginning of a row (or equals its End when empty) and ends
	// just past a row's newline (or at EOF for the last shard).
	Ranges []ByteRange

	header []byte // raw header line, including its newline when present
}

// splitScanBuf is the read granularity of the boundary scan.
const splitScanBuf = 64 * 1024

// SplitCSV splits the headed CSV file at path into shards byte ranges
// aligned to row boundaries: each target boundary (an even byte split
// of the data region) is advanced to just past the next newline, so no
// row is ever torn across two shards and the union of the ranges is
// exactly the set of data rows. Only the bytes around each boundary are
// read — splitting a multi-gigabyte file costs O(shards) small reads.
//
// Rows must not contain embedded (quoted) newlines: boundaries are
// found by scanning for '\n', and a newline inside a quoted field would
// be mistaken for a row end (the same restriction as Hadoop-style text
// splits). Files written by WriteCSV and the generators here satisfy
// it. The header line itself is scanned quote-aware, so quoted header
// names are fine.
func SplitCSV(path string, shards int) (*CSVShards, error) {
	if shards < 1 {
		return nil, fmt.Errorf("dataset: shards=%d must be positive", shards)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: split: %w", err)
	}
	defer f.Close() //fairvet:ignore errflow -- file opened read-only; nothing was buffered to lose
	info, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("dataset: split: %w", err)
	}
	size := info.Size()

	header, err := readHeaderLine(f, size)
	if err != nil {
		return nil, err
	}
	dataStart := int64(len(header))

	s := &CSVShards{Path: path, header: header}
	dataLen := size - dataStart
	prev := dataStart
	for i := 1; i < shards; i++ {
		target := dataStart + dataLen*int64(i)/int64(shards)
		cut := target
		if cut < prev {
			cut = prev
		}
		cut, err = nextRowStart(f, cut, size)
		if err != nil {
			return nil, err
		}
		s.Ranges = append(s.Ranges, ByteRange{Start: prev, End: cut})
		prev = cut
	}
	s.Ranges = append(s.Ranges, ByteRange{Start: prev, End: size})
	return s, nil
}

// Shards returns the number of ranges.
func (s *CSVShards) Shards() int { return len(s.Ranges) }

// Open returns a chunked CSV stream over shard i — the header replayed
// ahead of the shard's byte range — plus the underlying file handle,
// which the caller must Close when the stream is drained. Each shard
// stream has its own incremental domain state; the pipeline's merge
// step reconciles codes across shards.
func (s *CSVShards) Open(i int, spec CSVSpec, chunkSize int) (*CSVStream, io.Closer, error) {
	if i < 0 || i >= len(s.Ranges) {
		return nil, nil, fmt.Errorf("dataset: shard %d out of range [0,%d)", i, len(s.Ranges))
	}
	f, err := os.Open(s.Path)
	if err != nil {
		return nil, nil, fmt.Errorf("dataset: split: %w", err)
	}
	r := s.Ranges[i]
	header := s.header
	if len(header) > 0 && header[len(header)-1] != '\n' {
		// Header-only file with no trailing newline: give the CSV
		// reader a terminated header so the (empty) section that
		// follows starts a fresh record.
		header = append(append([]byte(nil), header...), '\n')
	}
	src := io.MultiReader(bytes.NewReader(header), io.NewSectionReader(f, r.Start, r.Len()))
	stream, err := NewCSVStream(src, spec, chunkSize)
	if err != nil {
		f.Close() //fairvet:ignore errflow -- read-only file closed on the error path; the stream error wins
		return nil, nil, err
	}
	return stream, f, nil
}

// readHeaderLine reads the header line (including its newline) from the
// start of the file, honouring quoted fields so a quoted header name
// containing '\n' does not truncate the header.
func readHeaderLine(f io.ReaderAt, size int64) ([]byte, error) {
	if size == 0 {
		return nil, fmt.Errorf("dataset: split: empty CSV")
	}
	var header []byte
	buf := make([]byte, splitScanBuf)
	inQuote := false
	for off := int64(0); off < size; {
		n, err := f.ReadAt(buf, off)
		if n == 0 && err != nil && err != io.EOF {
			return nil, fmt.Errorf("dataset: split: %w", err)
		}
		for i := 0; i < n; i++ {
			switch buf[i] {
			case '"':
				inQuote = !inQuote
			case '\n':
				if !inQuote {
					return append(header, buf[:i+1]...), nil
				}
			}
		}
		header = append(header, buf[:n]...)
		off += int64(n)
		if err == io.EOF {
			break
		}
	}
	// No newline: the whole file is the header (no data rows).
	return header, nil
}

// nextRowStart advances pos to the first byte after the next '\n' at or
// beyond it, clamping to size when no newline follows.
func nextRowStart(f io.ReaderAt, pos, size int64) (int64, error) {
	buf := make([]byte, splitScanBuf)
	for off := pos; off < size; {
		n, err := f.ReadAt(buf, off)
		if n == 0 && err != nil && err != io.EOF {
			return 0, fmt.Errorf("dataset: split: %w", err)
		}
		if i := bytes.IndexByte(buf[:n], '\n'); i >= 0 {
			return off + int64(i) + 1, nil
		}
		off += int64(n)
		if err == io.EOF {
			break
		}
	}
	return size, nil
}
