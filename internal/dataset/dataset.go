// Package dataset defines the tabular data model shared by every
// clustering algorithm and experiment in this repository.
//
// A Dataset separates its columns into two groups, mirroring the problem
// definition in the FairKM paper (Section 3):
//
//   - Features: the non-sensitive, task-relevant attributes N. They are
//     always numeric (categorical task attributes must be encoded, e.g.
//     one-hot, before clustering) and drive cluster coherence.
//   - Sensitive: the attributes S over which representational fairness
//     is sought. Each may be categorical (multi-valued, including
//     binary) or numeric; FairKM handles both.
//
// Records are stored column-major for sensitive attributes and row-major
// for features, which matches their access patterns: clustering reads
// whole feature rows per point, while fairness bookkeeping reads one
// sensitive column at a time.
package dataset

import (
	"errors"
	"fmt"
	"math"
)

// Kind discriminates categorical from numeric sensitive attributes.
type Kind int

const (
	// Categorical marks a multi-valued (or binary) sensitive attribute
	// whose per-row values are indexes into the attribute's domain.
	Categorical Kind = iota
	// Numeric marks a real-valued sensitive attribute (e.g. age); the
	// FairKM extension of Eq. 22 applies to these.
	Numeric
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Categorical:
		return "categorical"
	case Numeric:
		return "numeric"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// SensitiveAttr is one sensitive column of a Dataset.
//
// For Categorical attributes, Values is the domain (distinct values in a
// fixed order) and Codes[i] is the row-i value's index into Values.
// For Numeric attributes, Reals[i] holds row i's value and Values/Codes
// are nil.
type SensitiveAttr struct {
	Name   string
	Kind   Kind
	Values []string
	Codes  []int
	Reals  []float64
}

// Cardinality returns the domain size |Values(S)| for a categorical
// attribute and 1 for a numeric one (a numeric attribute contributes a
// single deviation term in Eq. 22).
func (s *SensitiveAttr) Cardinality() int {
	if s.Kind == Numeric {
		return 1
	}
	return len(s.Values)
}

// Len returns the number of rows the attribute covers.
func (s *SensitiveAttr) Len() int {
	if s.Kind == Numeric {
		return len(s.Reals)
	}
	return len(s.Codes)
}

// validate checks internal consistency against an expected row count.
func (s *SensitiveAttr) validate(n int) error {
	if s.Name == "" {
		return errors.New("dataset: sensitive attribute with empty name")
	}
	switch s.Kind {
	case Categorical:
		if len(s.Values) == 0 {
			return fmt.Errorf("dataset: attribute %q has empty domain", s.Name)
		}
		if len(s.Codes) != n {
			return fmt.Errorf("dataset: attribute %q has %d codes, want %d", s.Name, len(s.Codes), n)
		}
		for i, c := range s.Codes {
			if c < 0 || c >= len(s.Values) {
				return fmt.Errorf("dataset: attribute %q row %d code %d out of domain [0,%d)", s.Name, i, c, len(s.Values))
			}
		}
	case Numeric:
		if len(s.Reals) != n {
			return fmt.Errorf("dataset: attribute %q has %d values, want %d", s.Name, len(s.Reals), n)
		}
		for i, v := range s.Reals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("dataset: attribute %q row %d is not finite", s.Name, i)
			}
		}
	default:
		return fmt.Errorf("dataset: attribute %q has unknown kind %d", s.Name, s.Kind)
	}
	return nil
}

// Dataset is a clustering input: n rows over numeric features plus zero
// or more sensitive attributes.
type Dataset struct {
	FeatureNames []string
	Features     [][]float64
	Sensitive    []*SensitiveAttr
}

// N returns the number of rows.
func (d *Dataset) N() int { return len(d.Features) }

// Dim returns the feature dimensionality.
func (d *Dataset) Dim() int {
	if len(d.Features) == 0 {
		return len(d.FeatureNames)
	}
	return len(d.Features[0])
}

// Validate checks structural consistency: rectangular finite feature
// matrix, matching sensitive column lengths, in-domain codes. All
// loaders and generators call it before returning a Dataset.
func (d *Dataset) Validate() error {
	n := d.N()
	dim := d.Dim()
	if len(d.FeatureNames) != 0 && len(d.FeatureNames) != dim {
		return fmt.Errorf("dataset: %d feature names for %d features", len(d.FeatureNames), dim)
	}
	for i, row := range d.Features {
		if len(row) != dim {
			return fmt.Errorf("dataset: row %d has %d features, want %d", i, len(row), dim)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("dataset: feature [%d][%d] is not finite", i, j)
			}
		}
	}
	seen := make(map[string]bool, len(d.Sensitive))
	for _, s := range d.Sensitive {
		if err := s.validate(n); err != nil {
			return err
		}
		if seen[s.Name] {
			return fmt.Errorf("dataset: duplicate sensitive attribute %q", s.Name)
		}
		seen[s.Name] = true
	}
	return nil
}

// SensitiveByName returns the sensitive attribute with the given name,
// or nil if absent.
func (d *Dataset) SensitiveByName(name string) *SensitiveAttr {
	for _, s := range d.Sensitive {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Fractions returns the dataset-level fractional representation
// Fr_X^S(s) for every value s of the categorical attribute, i.e. the
// probability vector the fairness term compares cluster distributions
// against. It panics for numeric attributes and empty datasets.
func (d *Dataset) Fractions(s *SensitiveAttr) []float64 {
	if s.Kind != Categorical {
		panic("dataset: Fractions of a numeric attribute")
	}
	n := d.N()
	if n == 0 {
		panic("dataset: Fractions of an empty dataset")
	}
	fr := make([]float64, len(s.Values))
	for _, c := range s.Codes {
		fr[c]++
	}
	for i := range fr {
		fr[i] /= float64(n)
	}
	return fr
}

// Subset returns a new Dataset containing the rows at idx, in order.
// Feature rows are shared (not copied); sensitive columns are copied.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{
		FeatureNames: d.FeatureNames,
		Features:     make([][]float64, len(idx)),
		Sensitive:    make([]*SensitiveAttr, len(d.Sensitive)),
	}
	for i, j := range idx {
		out.Features[i] = d.Features[j]
	}
	for ai, s := range d.Sensitive {
		ns := &SensitiveAttr{Name: s.Name, Kind: s.Kind, Values: s.Values}
		if s.Kind == Categorical {
			ns.Codes = make([]int, len(idx))
			for i, j := range idx {
				ns.Codes[i] = s.Codes[j]
			}
		} else {
			ns.Reals = make([]float64, len(idx))
			for i, j := range idx {
				ns.Reals[i] = s.Reals[j]
			}
		}
		out.Sensitive[ai] = ns
	}
	return out
}

// WithSensitive returns a shallow copy of d restricted to the named
// sensitive attributes, in the given order. Unknown names are an error.
// It is used to run single-attribute invocations (ZGYA(S), FairKM(S)).
func (d *Dataset) WithSensitive(names ...string) (*Dataset, error) {
	out := &Dataset{FeatureNames: d.FeatureNames, Features: d.Features}
	for _, name := range names {
		s := d.SensitiveByName(name)
		if s == nil {
			return nil, fmt.Errorf("dataset: no sensitive attribute %q", name)
		}
		out.Sensitive = append(out.Sensitive, s)
	}
	return out, nil
}

// MinMaxNormalize rescales every feature column in place to [0, 1]
// (constant columns become all-zero). It returns the per-column minima
// and ranges so callers can invert the transform. The FairKM
// experiments use this scaling for the Adult dataset, where raw feature
// ranges differ by orders of magnitude (capital gain vs age).
func (d *Dataset) MinMaxNormalize() (mins, ranges []float64) {
	n := d.N()
	dim := d.Dim()
	mins = make([]float64, dim)
	ranges = make([]float64, dim)
	if n == 0 {
		return mins, ranges
	}
	for j := 0; j < dim; j++ {
		lo, hi := d.Features[0][j], d.Features[0][j]
		for i := 1; i < n; i++ {
			v := d.Features[i][j]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		mins[j], ranges[j] = lo, hi-lo
		for i := 0; i < n; i++ {
			if hi > lo {
				d.Features[i][j] = (d.Features[i][j] - lo) / (hi - lo)
			} else {
				d.Features[i][j] = 0
			}
		}
	}
	return mins, ranges
}

// Standardize rescales every feature column in place to zero mean and
// unit variance (constant columns become all-zero). It returns the
// per-column means and standard deviations so callers can invert the
// transform.
func (d *Dataset) Standardize() (means, stds []float64) {
	n := d.N()
	dim := d.Dim()
	means = make([]float64, dim)
	stds = make([]float64, dim)
	if n == 0 {
		return means, stds
	}
	for j := 0; j < dim; j++ {
		s, sq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := d.Features[i][j]
			s += v
			sq += v * v
		}
		mean := s / float64(n)
		variance := sq/float64(n) - mean*mean
		if variance < 0 {
			variance = 0
		}
		std := math.Sqrt(variance)
		means[j], stds[j] = mean, std
		for i := 0; i < n; i++ {
			if std > 0 {
				d.Features[i][j] = (d.Features[i][j] - mean) / std
			} else {
				d.Features[i][j] = 0
			}
		}
	}
	return means, stds
}
