package dataset

import (
	"fmt"
	"sort"
)

// Builder accumulates rows of mixed string/float columns and produces a
// validated Dataset. It is the bridge between raw tabular sources (CSV
// files, generators) and the numeric model the algorithms consume.
type Builder struct {
	featureNames []string
	features     [][]float64
	catNames     []string
	catDomains   [][]string // nil entry: infer domain from observed values
	catRows      [][]string
	numNames     []string
	numRows      [][]float64
}

// NewBuilder creates a Builder for the given feature column names.
func NewBuilder(featureNames ...string) *Builder {
	return &Builder{featureNames: featureNames}
}

// AddCategoricalSensitive declares a categorical sensitive column. Must
// be called before the first Row.
func (b *Builder) AddCategoricalSensitive(name string) *Builder {
	if len(b.features) > 0 {
		panic("dataset: AddCategoricalSensitive after rows were added")
	}
	b.catNames = append(b.catNames, name)
	b.catDomains = append(b.catDomains, nil)
	return b
}

// AddCategoricalSensitiveWithDomain declares a categorical sensitive
// column with a fixed domain in the given order. Values not in the
// domain cause Build to fail; domain values never observed in the data
// still count towards the attribute's cardinality (this matters for
// FairKM's |Values(S)| normalization and for reproducing published
// domain sizes like Adult's 41 native countries). Must be called before
// the first Row.
func (b *Builder) AddCategoricalSensitiveWithDomain(name string, domain []string) *Builder {
	if len(b.features) > 0 {
		panic("dataset: AddCategoricalSensitiveWithDomain after rows were added")
	}
	if len(domain) == 0 {
		panic("dataset: empty domain for " + name)
	}
	b.catNames = append(b.catNames, name)
	b.catDomains = append(b.catDomains, append([]string(nil), domain...))
	return b
}

// AddNumericSensitive declares a numeric sensitive column. Must be
// called before the first Row.
func (b *Builder) AddNumericSensitive(name string) *Builder {
	if len(b.features) > 0 {
		panic("dataset: AddNumericSensitive after rows were added")
	}
	b.numNames = append(b.numNames, name)
	return b
}

// Row appends one record: its feature vector, its categorical sensitive
// values (one per declared categorical column, in declaration order) and
// its numeric sensitive values.
func (b *Builder) Row(features []float64, cats []string, nums []float64) *Builder {
	if len(features) != len(b.featureNames) {
		panic(fmt.Sprintf("dataset: row has %d features, want %d", len(features), len(b.featureNames)))
	}
	if len(cats) != len(b.catNames) {
		panic(fmt.Sprintf("dataset: row has %d categorical sensitive values, want %d", len(cats), len(b.catNames)))
	}
	if len(nums) != len(b.numNames) {
		panic(fmt.Sprintf("dataset: row has %d numeric sensitive values, want %d", len(nums), len(b.numNames)))
	}
	b.features = append(b.features, features)
	b.catRows = append(b.catRows, cats)
	b.numRows = append(b.numRows, nums)
	return b
}

// Build encodes categorical domains (values sorted lexicographically for
// determinism) and returns the validated Dataset.
func (b *Builder) Build() (*Dataset, error) {
	d := &Dataset{FeatureNames: b.featureNames, Features: b.features}
	n := len(b.features)
	for ci, name := range b.catNames {
		values := b.catDomains[ci]
		if values == nil {
			domain := map[string]bool{}
			for _, row := range b.catRows {
				domain[row[ci]] = true
			}
			values = make([]string, 0, len(domain))
			for v := range domain {
				values = append(values, v)
			}
			sort.Strings(values)
		}
		index := make(map[string]int, len(values))
		for i, v := range values {
			index[v] = i
		}
		codes := make([]int, n)
		for ri, row := range b.catRows {
			code, ok := index[row[ci]]
			if !ok {
				return nil, fmt.Errorf("dataset: attribute %q row %d has value %q outside its fixed domain", name, ri, row[ci])
			}
			codes[ri] = code
		}
		d.Sensitive = append(d.Sensitive, &SensitiveAttr{
			Name: name, Kind: Categorical, Values: values, Codes: codes,
		})
	}
	for ni, name := range b.numNames {
		reals := make([]float64, n)
		for ri, row := range b.numRows {
			reals[ri] = row[ni]
		}
		d.Sensitive = append(d.Sensitive, &SensitiveAttr{
			Name: name, Kind: Numeric, Reals: reals,
		})
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
