package dataset

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// collectShardRows drains every shard of s in shard order, returning
// each row as "f1,f2,...|s1,s2,..." strings (sensitive decoded back to
// values, so shard-local code assignment doesn't matter).
func collectShardRows(t *testing.T, s *CSVShards, spec CSVSpec, chunk int) []string {
	t.Helper()
	var rows []string
	for i := 0; i < s.Shards(); i++ {
		stream, closer, err := s.Open(i, spec, chunk)
		if err != nil {
			t.Fatalf("open shard %d: %v", i, err)
		}
		for {
			ds, err := stream.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("shard %d: %v", i, err)
			}
			rows = append(rows, renderRows(ds)...)
		}
		closer.Close()
	}
	return rows
}

func renderRows(ds *Dataset) []string {
	rows := make([]string, ds.N())
	for i := 0; i < ds.N(); i++ {
		var sb strings.Builder
		for j, v := range ds.Features[i] {
			if j > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%g", v)
		}
		sb.WriteByte('|')
		for ai, attr := range ds.Sensitive {
			if ai > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(attr.Values[attr.Codes[i]])
		}
		rows[i] = sb.String()
	}
	return rows
}

func writeTempCSV(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// splitSpec is the two-feature, one-sensitive schema the tests use.
var splitSpec = CSVSpec{Features: []string{"x", "y"}, CategoricalSensitive: []string{"g"}}

// makeCSV renders n rows with deliberately varying widths so even byte
// splits land mid-row.
func makeCSV(n int, trailingNewline bool) string {
	var sb strings.Builder
	sb.WriteString("x,y,g\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%d.%06d,%d,g%d\n", i, i*7919%1000000, i%13, i%3)
	}
	out := sb.String()
	if !trailingNewline {
		out = strings.TrimSuffix(out, "\n")
	}
	return out
}

// TestSplitCSVUnionExact checks that for every shard count the shards
// partition the rows exactly — no row lost, duplicated or torn — even
// when byte targets fall mid-row, with and without a trailing newline.
func TestSplitCSVUnionExact(t *testing.T) {
	for _, trailing := range []bool{true, false} {
		for _, n := range []int{1, 2, 17, 100} {
			path := writeTempCSV(t, makeCSV(n, trailing))
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			seq, err := NewCSVStream(f, splitSpec, 7)
			if err != nil {
				t.Fatal(err)
			}
			var want []string
			for {
				ds, err := seq.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, renderRows(ds)...)
			}
			f.Close()

			for _, shards := range []int{1, 2, 3, 5, 8} {
				s, err := SplitCSV(path, shards)
				if err != nil {
					t.Fatalf("n=%d shards=%d: %v", n, shards, err)
				}
				if s.Shards() != shards {
					t.Fatalf("n=%d: got %d ranges, want %d", n, s.Shards(), shards)
				}
				got := collectShardRows(t, s, splitSpec, 7)
				if len(got) != len(want) {
					t.Fatalf("n=%d shards=%d trailing=%v: got %d rows, want %d", n, shards, trailing, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("n=%d shards=%d row %d: got %q, want %q", n, shards, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestSplitCSVRangesAligned checks the structural contract: ranges are
// contiguous, cover exactly the data region, and every boundary sits
// just past a newline.
func TestSplitCSVRangesAligned(t *testing.T) {
	content := makeCSV(50, true)
	path := writeTempCSV(t, content)
	s, err := SplitCSV(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	headerEnd := int64(strings.IndexByte(content, '\n') + 1)
	prev := headerEnd
	for i, r := range s.Ranges {
		if r.Start != prev {
			t.Fatalf("range %d starts at %d, want %d", i, r.Start, prev)
		}
		if r.End < r.Start {
			t.Fatalf("range %d is negative: %+v", i, r)
		}
		if r.Start > headerEnd && content[r.Start-1] != '\n' {
			t.Fatalf("range %d start %d is mid-row (previous byte %q)", i, r.Start, content[r.Start-1])
		}
		prev = r.End
	}
	if prev != int64(len(content)) {
		t.Fatalf("ranges end at %d, want file size %d", prev, len(content))
	}
}

// TestSplitCSVMoreShardsThanRows checks that tiny files produce empty
// shards that open cleanly and immediately report EOF.
func TestSplitCSVMoreShardsThanRows(t *testing.T) {
	path := writeTempCSV(t, makeCSV(2, true))
	s, err := SplitCSV(path, 6)
	if err != nil {
		t.Fatal(err)
	}
	got := collectShardRows(t, s, splitSpec, 4)
	if len(got) != 2 {
		t.Fatalf("got %d rows, want 2", len(got))
	}
	empty := 0
	for _, r := range s.Ranges {
		if r.Len() == 0 {
			empty++
		}
	}
	if empty == 0 {
		t.Fatal("expected at least one empty shard with 6 shards over 2 rows")
	}
}

// TestSplitCSVHeaderOnly checks a file with a header and no data rows:
// every shard opens (the header validates) and yields EOF.
func TestSplitCSVHeaderOnly(t *testing.T) {
	for _, content := range []string{"x,y,g\n", "x,y,g"} {
		path := writeTempCSV(t, content)
		s, err := SplitCSV(path, 3)
		if err != nil {
			t.Fatalf("%q: %v", content, err)
		}
		for i := 0; i < s.Shards(); i++ {
			stream, closer, err := s.Open(i, splitSpec, 4)
			if err != nil {
				t.Fatalf("%q shard %d: %v", content, i, err)
			}
			if _, err := stream.Next(); err != io.EOF {
				t.Fatalf("%q shard %d: got %v, want EOF", content, i, err)
			}
			closer.Close()
		}
	}
}

// TestSplitCSVErrors checks validation of the splitter inputs.
func TestSplitCSVErrors(t *testing.T) {
	if _, err := SplitCSV(writeTempCSV(t, "x,y,g\n1,2,a\n"), 0); err == nil {
		t.Fatal("shards=0 should error")
	}
	if _, err := SplitCSV(writeTempCSV(t, ""), 2); err == nil {
		t.Fatal("empty file should error")
	}
	if _, err := SplitCSV(filepath.Join(t.TempDir(), "missing.csv"), 2); err == nil {
		t.Fatal("missing file should error")
	}
	s, err := SplitCSV(writeTempCSV(t, "x,y,g\n1,2,a\n"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Open(9, splitSpec, 4); err == nil {
		t.Fatal("out-of-range shard should error")
	}
	// Missing column surfaces at Open, per shard.
	if _, _, err := s.Open(0, CSVSpec{Features: []string{"zz"}}, 4); err == nil {
		t.Fatal("missing column should error at Open")
	}
}
