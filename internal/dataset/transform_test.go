package dataset

import (
	"testing"
	"testing/quick"
)

func TestOneHotAppend(t *testing.T) {
	ds := buildSmall(t)
	out, err := ds.OneHotAppend("gender")
	if err != nil {
		t.Fatalf("OneHotAppend: %v", err)
	}
	if out.Dim() != ds.Dim()+2 {
		t.Fatalf("dim = %d, want %d", out.Dim(), ds.Dim()+2)
	}
	g := ds.SensitiveByName("gender")
	for i := 0; i < ds.N(); i++ {
		// Original features preserved.
		for j := 0; j < ds.Dim(); j++ {
			if out.Features[i][j] != ds.Features[i][j] {
				t.Fatalf("feature [%d][%d] changed", i, j)
			}
		}
		// Exactly one hot bit, at the right position.
		hot := 0
		for j := ds.Dim(); j < out.Dim(); j++ {
			if out.Features[i][j] == 1 {
				hot++
			} else if out.Features[i][j] != 0 {
				t.Fatalf("non-binary one-hot value %v", out.Features[i][j])
			}
		}
		if hot != 1 {
			t.Fatalf("row %d has %d hot bits", i, hot)
		}
		if out.Features[i][ds.Dim()+g.Codes[i]] != 1 {
			t.Fatalf("row %d hot bit at wrong position", i)
		}
	}
	// Feature names extended with attr=value labels.
	if out.FeatureNames[ds.Dim()] != "gender=f" {
		t.Errorf("one-hot name = %q", out.FeatureNames[ds.Dim()])
	}
	if err := out.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Original untouched.
	if ds.Dim() != 2 {
		t.Errorf("receiver mutated")
	}
}

func TestOneHotAppendErrors(t *testing.T) {
	ds := buildSmall(t)
	if _, err := ds.OneHotAppend("nope"); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := ds.OneHotAppend("age"); err == nil {
		t.Error("numeric attribute accepted")
	}
}

func TestShuffledIsPermutation(t *testing.T) {
	ds := buildSmall(t)
	sh := ds.Shuffled(5)
	if sh.N() != ds.N() {
		t.Fatalf("N changed: %d", sh.N())
	}
	// Multiset of first-feature values preserved.
	seen := map[float64]int{}
	for i := 0; i < ds.N(); i++ {
		seen[ds.Features[i][0]]++
		seen[sh.Features[i][0]]--
	}
	for v, c := range seen {
		if c != 0 {
			t.Errorf("value %v count imbalance %d", v, c)
		}
	}
	if err := sh.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Deterministic per seed.
	sh2 := ds.Shuffled(5)
	for i := range sh.Features {
		if sh.Features[i][0] != sh2.Features[i][0] {
			t.Fatal("same seed shuffles differ")
		}
	}
}

func TestSplit(t *testing.T) {
	ds := buildSmall(t)
	left, right, err := ds.Split(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if left.N() != 2 || right.N() != 2 {
		t.Errorf("split sizes %d/%d, want 2/2", left.N(), right.N())
	}
	if left.Features[0][0] != ds.Features[0][0] {
		t.Error("split does not preserve order")
	}
	if _, _, err := ds.Split(1.5); err == nil {
		t.Error("out-of-range fraction accepted")
	}
	all, none, err := ds.Split(1)
	if err != nil {
		t.Fatal(err)
	}
	if all.N() != 4 || none.N() != 0 {
		t.Errorf("Split(1) gave %d/%d", all.N(), none.N())
	}
}

// Property: for any fraction, split parts partition the rows.
func TestSplitPartitionProperty(t *testing.T) {
	ds := buildSmall(t)
	f := func(fracRaw uint8) bool {
		frac := float64(fracRaw) / 255
		left, right, err := ds.Split(frac)
		if err != nil {
			return false
		}
		return left.N()+right.N() == ds.N()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
