package dataset

import (
	"fmt"

	"repro/internal/stats"
)

// Transformations used when preparing raw tabular data for clustering:
// one-hot expansion of categorical task attributes, deterministic
// shuffling and splitting. All of them return new Datasets and leave
// the receiver unchanged (feature rows may be shared where noted).

// OneHotAppend returns a new Dataset whose feature matrix is d's plus
// a one-hot block for each named categorical sensitive attribute.
// The attributes remain in Sensitive as well — this is how "the
// clustering should SEE a categorical attribute as task-relevant"
// (e.g. for S-blind baselines that cluster on everything) is
// expressed. Feature rows are copied.
func (d *Dataset) OneHotAppend(names ...string) (*Dataset, error) {
	var attrs []*SensitiveAttr
	extra := 0
	for _, name := range names {
		s := d.SensitiveByName(name)
		if s == nil {
			return nil, fmt.Errorf("dataset: no sensitive attribute %q", name)
		}
		if s.Kind != Categorical {
			return nil, fmt.Errorf("dataset: attribute %q is not categorical", name)
		}
		attrs = append(attrs, s)
		extra += len(s.Values)
	}
	out := &Dataset{
		FeatureNames: append([]string(nil), d.FeatureNames...),
		Features:     make([][]float64, d.N()),
		Sensitive:    d.Sensitive,
	}
	for _, s := range attrs {
		for _, v := range s.Values {
			out.FeatureNames = append(out.FeatureNames, s.Name+"="+v)
		}
	}
	dim := d.Dim()
	for i := 0; i < d.N(); i++ {
		row := make([]float64, dim+extra)
		copy(row, d.Features[i])
		off := dim
		for _, s := range attrs {
			row[off+s.Codes[i]] = 1
			off += len(s.Values)
		}
		out.Features[i] = row
	}
	return out, nil
}

// Shuffled returns a new Dataset with rows in a seeded random order.
func (d *Dataset) Shuffled(seed int64) *Dataset {
	rng := stats.NewRNG(seed)
	idx := rng.Perm(d.N())
	return d.Subset(idx)
}

// Split partitions the dataset into two by a fraction of rows going to
// the first part (rounded down), preserving row order. Use Shuffled
// first for a random split. frac must be in [0, 1].
func (d *Dataset) Split(frac float64) (*Dataset, *Dataset, error) {
	if frac < 0 || frac > 1 {
		return nil, nil, fmt.Errorf("dataset: split fraction %v outside [0,1]", frac)
	}
	cut := int(frac * float64(d.N()))
	left := make([]int, cut)
	right := make([]int, d.N()-cut)
	for i := range left {
		left[i] = i
	}
	for i := range right {
		right[i] = cut + i
	}
	return d.Subset(left), d.Subset(right), nil
}
