package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSVStream reads a headed CSV source in bounded chunks, so arbitrarily
// large files can be summarized (internal/coreset.Stream) or scanned
// (second-pass metrics) without ever materializing more than chunkSize
// rows. It is the ingestion stage of the summarize-then-solve pipeline
// behind cmd/fairstream.
//
// Unlike ReadCSV — which sees all rows before encoding — a stream
// discovers categorical domains incrementally: codes are assigned in
// order of first appearance and are stable across chunks (the same
// string always maps to the same code), with each chunk's Values slice
// a copy of the domain as known at that point. Consumers that need
// cross-chunk consistency should therefore key on codes (stable) or
// value strings, not on domain cardinality, which can still grow.
// Declared domains (CSVSpec columns listed in a builder with fixed
// domains) are unnecessary here: the pipeline re-keys by value string.
type CSVStream struct {
	cr    *csv.Reader
	spec  CSVSpec
	chunk int

	fIdx, cIdx, nIdx []int
	domains          []*DomainIndex

	line int
	done bool
}

// DomainIndex accumulates one categorical domain incrementally: Code
// assigns stable integer codes in order of first appearance, the
// invariant every streaming consumer (CSVStream chunks, the pipeline
// summarizer) keys on.
type DomainIndex struct {
	values []string
	index  map[string]int
}

// NewDomainIndex returns an empty domain.
func NewDomainIndex() *DomainIndex {
	return &DomainIndex{index: map[string]int{}}
}

// NewDomainIndexFrom rebuilds a domain from a snapshot of its values in
// code order — the inverse of Values. A loaded model artifact uses this
// to resume stable code assignment where training left off: known
// values keep their training codes, unseen serving-time values are
// appended. Duplicate values in the snapshot are an error (codes would
// be ambiguous).
func NewDomainIndexFrom(values []string) (*DomainIndex, error) {
	d := &DomainIndex{
		values: append([]string(nil), values...),
		index:  make(map[string]int, len(values)),
	}
	for c, v := range d.values {
		if _, ok := d.index[v]; ok {
			return nil, fmt.Errorf("dataset: duplicate domain value %q", v)
		}
		d.index[v] = c
	}
	return d, nil
}

// Len returns the current domain cardinality.
func (d *DomainIndex) Len() int { return len(d.values) }

// Lookup returns v's code without assigning one, and whether it exists.
func (d *DomainIndex) Lookup(v string) (int, bool) {
	c, ok := d.index[v]
	return c, ok
}

// Code returns v's stable code, assigning the next one on first sight.
func (d *DomainIndex) Code(v string) int {
	if c, ok := d.index[v]; ok {
		return c
	}
	c := len(d.values)
	d.values = append(d.values, v)
	d.index[v] = c
	return c
}

// Values returns the domain in code order. The slice is the index's
// live backing store — callers that retain or mutate it must copy.
func (d *DomainIndex) Values() []string { return d.values }

// DefaultChunkSize is the CSVStream chunk size when the caller passes
// chunkSize <= 0.
const DefaultChunkSize = 4096

// NewCSVStream opens a chunked reader over a headed CSV source. It
// reads and validates the header immediately, so column errors surface
// before any chunk is requested.
func NewCSVStream(r io.Reader, spec CSVSpec, chunkSize int) (*CSVStream, error) {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	col := make(map[string]int, len(header))
	for i, h := range header {
		col[strings.TrimSpace(h)] = i
	}
	locate := func(names []string) ([]int, error) {
		idx := make([]int, len(names))
		for i, name := range names {
			j, ok := col[name]
			if !ok {
				return nil, fmt.Errorf("dataset: CSV is missing column %q", name)
			}
			idx[i] = j
		}
		return idx, nil
	}
	s := &CSVStream{cr: cr, spec: spec, chunk: chunkSize, line: 1}
	if s.fIdx, err = locate(spec.Features); err != nil {
		return nil, err
	}
	if s.cIdx, err = locate(spec.CategoricalSensitive); err != nil {
		return nil, err
	}
	if s.nIdx, err = locate(spec.NumericSensitive); err != nil {
		return nil, err
	}
	s.domains = make([]*DomainIndex, len(spec.CategoricalSensitive))
	for i := range s.domains {
		s.domains[i] = NewDomainIndex()
	}
	return s, nil
}

// Next returns the next chunk of up to chunkSize rows as a validated
// Dataset, or (nil, io.EOF) once the source is exhausted. Chunks share
// nothing with each other except the stable code assignment; feature
// rows and sensitive columns are freshly allocated per chunk.
func (s *CSVStream) Next() (*Dataset, error) {
	if s.done {
		return nil, io.EOF
	}
	features := make([][]float64, 0, s.chunk)
	codes := make([][]int, len(s.cIdx))
	reals := make([][]float64, len(s.nIdx))
	for len(features) < s.chunk {
		rec, err := s.cr.Read()
		if err == io.EOF {
			s.done = true
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", s.line+1, err)
		}
		s.line++
		row := make([]float64, len(s.fIdx))
		for i, j := range s.fIdx {
			v, err := strconv.ParseFloat(strings.TrimSpace(rec[j]), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d column %q: %w", s.line, s.spec.Features[i], err)
			}
			row[i] = v
		}
		features = append(features, row)
		for i, j := range s.cIdx {
			codes[i] = append(codes[i], s.domains[i].Code(strings.TrimSpace(rec[j])))
		}
		for i, j := range s.nIdx {
			v, err := strconv.ParseFloat(strings.TrimSpace(rec[j]), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d column %q: %w", s.line, s.spec.NumericSensitive[i], err)
			}
			reals[i] = append(reals[i], v)
		}
	}
	if len(features) == 0 {
		return nil, io.EOF
	}
	ds := &Dataset{
		FeatureNames: s.spec.Features,
		Features:     features,
	}
	for i, name := range s.spec.CategoricalSensitive {
		ds.Sensitive = append(ds.Sensitive, &SensitiveAttr{
			Name:   name,
			Kind:   Categorical,
			Values: append([]string(nil), s.domains[i].Values()...),
			Codes:  codes[i],
		})
	}
	for i, name := range s.spec.NumericSensitive {
		ds.Sensitive = append(ds.Sensitive, &SensitiveAttr{
			Name:  name,
			Kind:  Numeric,
			Reals: reals[i],
		})
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// Rows returns how many data rows have been decoded so far.
func (s *CSVStream) Rows() int { return s.line - 1 }
