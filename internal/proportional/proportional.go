// Package proportional implements proportionally fair clustering
// (Chen, Fain, Lyu, Munagala — "Proportionally Fair Clustering",
// 2019), surveyed as reference [5] in the FairKM paper's Table 1.
//
// Unlike every other method in this repository, proportionality is
// attribute-AGNOSTIC: a clustering of n points into k clusters is
// proportionally fair if no group of ⌈n/k⌉ points could all strictly
// benefit by deviating to some other center — i.e. there is no center
// candidate y and set of ⌈n/k⌉ points each closer to y than to their
// assigned center.
//
// This package provides the greedy ball-growing algorithm of Chen et
// al. (GREEDY CAPTURE), which guarantees approximate proportionality,
// plus an exact audit that searches for violations of the definition.
package proportional

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// Result is a completed proportional clustering.
type Result struct {
	// Centers holds the opened center row indexes (at most K).
	Centers []int
	// Assign maps each row to the index (into Centers) of the center
	// that captured it.
	Assign []int
}

// GreedyCapture grows balls around every candidate center
// simultaneously; when a ball captures ⌈n/k⌉ unclustered points its
// center opens and those points are assigned. Opened centers keep
// capturing any point their ball reaches. This is Chen et al.'s
// polynomial-time algorithm achieving (1+√2)-proportionality.
func GreedyCapture(features [][]float64, k int) (*Result, error) {
	n := len(features)
	if n == 0 {
		return nil, errors.New("proportional: empty dataset")
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("proportional: K=%d out of range [1,%d]", k, n)
	}
	need := (n + k - 1) / k // ⌈n/k⌉

	// Event-driven simulation over sorted (distance, point, candidate)
	// triples: as the radius sweeps upward, candidates accumulate
	// unclustered points; opened centers capture points immediately.
	type event struct {
		d    float64
		p, c int
	}
	events := make([]event, 0, n*n)
	for c := 0; c < n; c++ {
		for p := 0; p < n; p++ {
			events = append(events, event{stats.Dist(features[p], features[c]), p, c})
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].d < events[j].d })

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	captured := make([][]int, n) // per candidate: unclustered points reached
	opened := map[int]int{}      // candidate -> index in centers
	var centers []int
	remaining := n
	for _, ev := range events {
		if remaining == 0 {
			break
		}
		if assign[ev.p] != -1 {
			continue
		}
		if ci, ok := opened[ev.c]; ok {
			// An open center's ball reached an unclustered point.
			assign[ev.p] = ci
			remaining--
			continue
		}
		captured[ev.c] = append(captured[ev.c], ev.p)
		// Re-filter: some captured points may have been claimed since.
		live := captured[ev.c][:0]
		for _, p := range captured[ev.c] {
			if assign[p] == -1 {
				live = append(live, p)
			}
		}
		captured[ev.c] = live
		if len(live) >= need {
			ci := len(centers)
			centers = append(centers, ev.c)
			opened[ev.c] = ci
			for _, p := range live {
				assign[p] = ci
				remaining--
			}
			captured[ev.c] = nil
		}
	}
	// Leftover points (fewer than ⌈n/k⌉ remained): assign to nearest
	// opened center; if none opened (k=n edge cases), open the first
	// point as a center.
	if len(centers) == 0 {
		centers = append(centers, 0)
	}
	for p := 0; p < n; p++ {
		if assign[p] != -1 {
			continue
		}
		best, bestD := 0, math.Inf(1)
		for ci, c := range centers {
			if d := stats.Dist(features[p], features[c]); d < bestD {
				best, bestD = ci, d
			}
		}
		assign[p] = best
	}
	return &Result{Centers: centers, Assign: assign}, nil
}

// Violation describes a blocking coalition found by Audit.
type Violation struct {
	// Center is the deviating center candidate (row index).
	Center int
	// Coalition lists ⌈n/k⌉ rows all strictly closer to Center than to
	// their assigned centers.
	Coalition []int
	// Factor is the smallest ratio d(p, assigned)/d(p, Center) over
	// the coalition: how much every member gains at minimum.
	Factor float64
}

// Audit searches for violations of ρ-approximate proportionality: a
// candidate center y and ⌈n/k⌉ points p with ρ·d(p,y) < d(p, assigned).
// It returns nil if the clustering is ρ-proportional. Cost is O(n²).
func Audit(features [][]float64, assign []int, centers []int, k int, rho float64) *Violation {
	n := len(features)
	if rho <= 0 {
		rho = 1
	}
	need := (n + k - 1) / k
	assignedDist := make([]float64, n)
	for p := 0; p < n; p++ {
		assignedDist[p] = stats.Dist(features[p], features[centers[assign[p]]])
	}
	for y := 0; y < n; y++ {
		var coalition []int
		worst := math.Inf(1)
		for p := 0; p < n; p++ {
			dy := stats.Dist(features[p], features[y])
			if rho*dy < assignedDist[p]-1e-12 {
				coalition = append(coalition, p)
				gain := math.Inf(1)
				if dy > 0 {
					gain = assignedDist[p] / dy
				}
				if gain < worst {
					worst = gain
				}
			}
		}
		if len(coalition) >= need {
			return &Violation{Center: y, Coalition: coalition[:need], Factor: worst}
		}
	}
	return nil
}
