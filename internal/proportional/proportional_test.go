package proportional

import (
	"testing"

	"repro/internal/stats"
)

func blobs(seed int64, g, m int, sep float64) [][]float64 {
	rng := stats.NewRNG(seed)
	var features [][]float64
	for c := 0; c < g; c++ {
		for i := 0; i < m; i++ {
			features = append(features, []float64{
				rng.Gaussian(float64(c)*sep, 0.3),
				rng.Gaussian(0, 0.3),
			})
		}
	}
	return features
}

func TestGreedyCaptureCoversEveryPoint(t *testing.T) {
	features := blobs(1, 3, 20, 10)
	res, err := GreedyCapture(features, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != len(features) {
		t.Fatalf("assign length %d", len(res.Assign))
	}
	for i, a := range res.Assign {
		if a < 0 || a >= len(res.Centers) {
			t.Fatalf("point %d assigned to %d with %d centers", i, a, len(res.Centers))
		}
	}
	if len(res.Centers) > 3 {
		t.Errorf("opened %d centers, want <= 3", len(res.Centers))
	}
}

func TestGreedyCaptureIsApproximatelyProportional(t *testing.T) {
	// Chen et al. guarantee (1+√2)-proportionality (~2.414); audit at
	// a slightly looser 2.5.
	features := blobs(2, 4, 15, 6)
	res, err := GreedyCapture(features, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v := Audit(features, res.Assign, res.Centers, 4, 2.5); v != nil {
		t.Errorf("greedy capture violates 2.5-proportionality: center %d, coalition %d points, factor %v",
			v.Center, len(v.Coalition), v.Factor)
	}
}

func TestAuditFindsPlantedViolation(t *testing.T) {
	// Two far blobs but a clustering that lumps everything onto a
	// center in blob 1: blob 2's points (>= ⌈n/k⌉ of them) would all
	// rather deviate to one of their own.
	features := blobs(3, 2, 20, 50)
	assign := make([]int, 40)
	centers := []int{0} // a blob-1 point is the single pseudo-center
	for i := range assign {
		assign[i] = 0
	}
	// Audit at ρ=5: only coalitions gaining 5x qualify, which filters
	// marginal within-blob improvements and must surface blob 2's
	// wholesale defection.
	v := Audit(features, assign, centers, 2, 5)
	if v == nil {
		t.Fatal("audit missed an obvious violation")
	}
	if len(v.Coalition) < 20 {
		t.Errorf("coalition size %d, want >= 20", len(v.Coalition))
	}
	if v.Factor < 10 {
		t.Errorf("violation factor %v suspiciously small for 50-separated blobs", v.Factor)
	}
}

func TestErrors(t *testing.T) {
	if _, err := GreedyCapture(nil, 1); err == nil {
		t.Error("empty input accepted")
	}
	features := blobs(4, 1, 5, 0)
	if _, err := GreedyCapture(features, 0); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := GreedyCapture(features, 6); err == nil {
		t.Error("K>n accepted")
	}
}

func TestKEqualsOne(t *testing.T) {
	features := blobs(5, 2, 10, 5)
	res, err := GreedyCapture(features, 1)
	if err != nil {
		t.Fatal(err)
	}
	// With k=1, ⌈n/k⌉ = n: one center captures everything.
	if len(res.Centers) != 1 {
		t.Errorf("centers = %d, want 1", len(res.Centers))
	}
	for _, a := range res.Assign {
		if a != 0 {
			t.Fatal("not all points assigned to the single center")
		}
	}
	// k=1 is trivially proportional (no smaller coalition can deviate).
	if v := Audit(features, res.Assign, res.Centers, 1, 1); v != nil {
		t.Errorf("k=1 clustering flagged: %+v", v)
	}
}

func TestDeterminism(t *testing.T) {
	features := blobs(6, 3, 12, 8)
	a, err := GreedyCapture(features, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GreedyCapture(features, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("assignment %d differs", i)
		}
	}
}
