package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestRunAdultCSV(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "adult.csv")
	var buf bytes.Buffer
	err := run([]string{"-dataset", "adult", "-rows", "300", "-o", out}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "wrote") {
		t.Errorf("missing progress output: %q", buf.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := dataset.ReadCSV(f, dataset.CSVSpec{
		Features:             []string{"age", "hours-per-week"},
		CategoricalSensitive: []string{"gender", "race"},
	})
	if err != nil {
		t.Fatalf("re-reading generated CSV: %v", err)
	}
	if ds.N() == 0 {
		t.Error("empty generated dataset")
	}
}

func TestRunKinematicsWithTexts(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "kin.csv")
	texts := filepath.Join(dir, "problems.txt")
	var buf bytes.Buffer
	if err := run([]string{"-dataset", "kinematics", "-o", out, "-texts", texts}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(texts)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines != 161 {
		t.Errorf("problem file has %d lines, want 161", lines)
	}
	if !strings.Contains(string(data), "Type-3") {
		t.Error("missing type labels in text output")
	}
}

func TestRunUnknownDataset(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-dataset", "nope"}, &buf); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Error("bogus flag accepted")
	}
}

// TestValidationAudit pins the CLI failure contract for datagen.
func TestValidationAudit(t *testing.T) {
	cases := map[string][]string{
		"unknown dataset": {"-dataset", "census2090"},
		"unwritable out":  {"-dataset", "adult", "-rows", "50", "-o", "no/such/dir/out.csv"},
		"unknown flag":    {"-zap"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(args, &buf); err == nil {
				t.Errorf("run(%v) accepted a bad invocation", args)
			}
		})
	}
}
