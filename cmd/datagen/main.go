// Command datagen writes the synthetic stand-in datasets to CSV so they
// can be inspected or consumed by external tools (or by cmd/fairkm).
//
// Usage:
//
//	datagen -dataset adult|kinematics [-seed S] [-rows N] [-o FILE]
//
// For kinematics, -texts additionally writes the generated word
// problems (one per line, with their type) next to the embedding CSV.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/data/adult"
	"repro/internal/data/kinematics"
	"repro/internal/dataset"
)

func main() { cli.Main("datagen", run) }

// run executes the tool against the given arguments, writing progress
// to out. Split from main for testability. The named result lets the
// deferred close of the written CSV fold its error in: Close is the
// final flush, and a silent failure there is silent data loss.
func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		which = fs.String("dataset", "adult", "dataset to generate: adult or kinematics")
		seed  = fs.Int64("seed", 1, "random seed")
		rows  = fs.Int("rows", 0, "adult: pre-undersampling row count (0 = 32561)")
		oPath = fs.String("o", "", "output CSV path (default <dataset>.csv)")
		texts = fs.String("texts", "", "kinematics: also write problem texts to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	path := *oPath
	if path == "" {
		path = *which + ".csv"
	}

	var ds *dataset.Dataset
	switch *which {
	case "adult":
		ds, err = adult.Generate(adult.Config{Seed: *seed, Rows: *rows})
	case "kinematics":
		ds, err = kinematics.Generate(kinematics.Config{Seed: *seed})
		if err == nil && *texts != "" {
			err = writeTexts(*texts, *seed)
		}
	default:
		return fmt.Errorf("unknown dataset %q (want adult or kinematics)", *which)
	}
	if err != nil {
		return err
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer cli.CloseCapture(&err, f)
	if err := dataset.WriteCSV(f, ds); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d rows x (%d features + %d sensitive) to %s\n",
		ds.N(), ds.Dim(), len(ds.Sensitive), path)
	return nil
}

func writeTexts(path string, seed int64) (err error) {
	f, cerr := os.Create(path)
	if cerr != nil {
		return cerr
	}
	defer cli.CloseCapture(&err, f)
	for _, p := range kinematics.Problems(seed) {
		if _, err := fmt.Fprintf(f, "Type-%d\t%s\n", p.Type, p.Text); err != nil {
			return err
		}
	}
	return nil
}
