package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/load"
	"repro/internal/model"
	"repro/internal/testfix"
)

// saveFixtureModel trains and saves a small artifact for the harness.
func saveFixtureModel(t *testing.T, dir string, seed int64) string {
	t.Helper()
	ds := testfix.Synth(seed, 200, 3, 1, 0)
	res, err := core.Run(ds, core.Config{K: 3, AutoLambda: true, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.New(ds, nil, res, model.Provenance{Tool: "test", Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("m%d.json", seed))
	if err := model.Save(path, m); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestInProcessSmoke runs the whole CLI against an in-process registry:
// the CI smoke path for fairload.
func TestInProcessSmoke(t *testing.T) {
	dir := t.TempDir()
	path := saveFixtureModel(t, dir, 1)

	var buf bytes.Buffer
	err := runCtx(context.Background(), []string{
		"-artifact", "prod=" + path,
		"-rate", "2000", "-requests", "200", "-seed", "7",
		"-slo", "1s",
	}, &buf)
	if err != nil {
		t.Fatalf("fairload failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"workload:", "ok 200", "latency:", "MET"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestJSONReport checks the -json report round-trips and matches the
// human run's counts at the same seed.
func TestJSONReport(t *testing.T) {
	dir := t.TempDir()
	path := saveFixtureModel(t, dir, 2)

	var buf bytes.Buffer
	err := runCtx(context.Background(), []string{
		"-artifact", path, // bare path: name derived by the registry
		"-rate", "2000", "-requests", "100", "-seed", "9", "-json",
	}, &buf)
	if err != nil {
		t.Fatalf("fairload -json failed: %v\n%s", err, buf.String())
	}
	var rep load.Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, buf.String())
	}
	if rep.Sent != 100 || rep.OK != 100 {
		t.Errorf("report counts: %+v", rep)
	}
	if rep.Config.Seed != 9 || rep.Config.Dim != 3 {
		t.Errorf("report config: %+v (dim should be discovered from the artifact)", rep.Config)
	}
	if rep.Latency.Count != 100 {
		t.Errorf("latency histogram count %d", rep.Latency.Count)
	}
}

// TestDeterministicWorkload: the same seed produces the same workload
// fingerprint line across invocations.
func TestDeterministicWorkload(t *testing.T) {
	dir := t.TempDir()
	path := saveFixtureModel(t, dir, 3)

	fingerprint := func(seed string) string {
		var buf bytes.Buffer
		err := runCtx(context.Background(), []string{
			"-artifact", "prod=" + path, "-rate", "5000", "-requests", "50", "-seed", seed,
		}, &buf)
		if err != nil {
			t.Fatalf("fairload failed: %v\n%s", err, buf.String())
		}
		line, _, _ := strings.Cut(buf.String(), "\n")
		if !strings.Contains(line, "fingerprint") {
			t.Fatalf("no fingerprint line: %q", line)
		}
		return line
	}
	if fingerprint("42") != fingerprint("42") {
		t.Error("same seed, different fingerprints")
	}
	if fingerprint("42") == fingerprint("43") {
		t.Error("different seeds, same fingerprint")
	}
}

// TestCancelStopsPacer: canceling the context ends a long schedule
// early with unsent requests, not an error.
func TestCancelStopsPacer(t *testing.T) {
	dir := t.TempDir()
	path := saveFixtureModel(t, dir, 4)

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	var buf bytes.Buffer
	err := runCtx(ctx, []string{
		"-artifact", "prod=" + path, "-rate", "50", "-requests", "10000", "-json",
	}, &buf)
	if err != nil {
		t.Fatalf("canceled run errored: %v", err)
	}
	var rep load.Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Unsent == 0 || rep.Sent+rep.Unsent != 10000 {
		t.Errorf("cancel accounting: sent %d unsent %d", rep.Sent, rep.Unsent)
	}
}

// TestValidationAudit pins the exit-code-2 contract: every bad
// invocation returns an error instead of panicking or running.
func TestValidationAudit(t *testing.T) {
	dir := t.TempDir()
	path := saveFixtureModel(t, dir, 5)
	art := "prod=" + path
	cases := map[string][]string{
		"no target":                 {},
		"both targets":              {"-url", "http://x", "-artifact", art},
		"unknown flag":              {"-artifact", art, "-zap"},
		"missing artifact":          {"-artifact", "no/such.json"},
		"zero rate":                 {"-artifact", art, "-rate", "0"},
		"negative requests":         {"-artifact", art, "-requests", "-5"},
		"bad zipf":                  {"-artifact", art, "-zipf", "0.5"},
		"negative timeout":          {"-artifact", art, "-timeout", "-1s"},
		"negative dim":              {"-artifact", art, "-dim", "-3"},
		"server flags in http mode": {"-url", "http://x", "-workers", "2"},
		"queue without concurrent":  {"-artifact", art, "-max-queue", "4"},
		"unreachable url":           {"-url", "http://127.0.0.1:1", "-requests", "1"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			var buf bytes.Buffer
			if err := runCtx(ctx, args, &buf); err == nil {
				t.Errorf("fairload accepted a bad invocation: %v", args)
			}
		})
	}
}

// TestCPUProfile: -cpuprofile writes a non-empty pprof profile of the
// load run.
func TestCPUProfile(t *testing.T) {
	dir := t.TempDir()
	path := saveFixtureModel(t, dir, 2)
	profile := filepath.Join(dir, "cpu.prof")

	var buf bytes.Buffer
	err := runCtx(context.Background(), []string{
		"-artifact", "prod=" + path,
		"-rate", "2000", "-requests", "100", "-seed", "3",
		"-cpuprofile", profile,
	}, &buf)
	if err != nil {
		t.Fatalf("fairload failed: %v\n%s", err, buf.String())
	}
	if prof, err := os.ReadFile(profile); err != nil || len(prof) == 0 {
		t.Errorf("cpu profile: err=%v size=%d", err, len(prof))
	}
}
