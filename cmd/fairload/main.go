// Command fairload is an open-loop load harness for fairserved: it
// fires assignment requests at a fixed arrival rate on a schedule
// computed up front from the seed, so a slow server cannot throttle
// the offered load (no coordinated omission). Batch sizes and model
// selection are Zipf-distributed; the report covers the full
// accepted-request latency distribution, per-second throughput, the
// shed/deadline/error breakdown, and SLO attainment (rows/s at
// p99 ≤ the -slo bound).
//
// Two targets:
//
//	fairload -url http://host:8080 -rate 500 -requests 5000
//	    drives a live fairserved over HTTP; the payload dimensionality
//	    is discovered via GET /v1/models unless -dim is given.
//
//	fairload -artifact prod=m.json -rate 500 -requests 5000
//	    loads the artifact(s) into an in-process registry and drives it
//	    directly — deterministic, no network in the measurement. The
//	    -workers/-batch/-max-concurrent/-max-queue/-queue-budget flags
//	    configure the in-process server exactly like fairserved.
//
// At a fixed -seed the schedule and payload bytes are identical across
// runs and machines (the report prints the workload fingerprint).
// -json emits the full report for dashboards; the default output is a
// human-readable summary.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime/pprof"
	"strings"
	"syscall"

	"repro/internal/cli"
	"repro/internal/load"
	"repro/internal/serve"
)

func main() { cli.Main("fairload", run) }

// repeatable collects repeated string flags.
type repeatable []string

func (r *repeatable) String() string { return strings.Join(*r, ",") }

func (r *repeatable) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func run(args []string, out io.Writer) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runCtx(ctx, args, out)
}

// runCtx's named result lets the deferred close of the written CPU
// profile report a failed final flush instead of dropping it.
func runCtx(ctx context.Context, args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("fairload", flag.ContinueOnError)
	fs.SetOutput(out)
	var artifacts, modelNames repeatable
	fs.Var(&artifacts, "artifact", "model artifact for in-process mode, as PATH or NAME=PATH (repeatable)")
	fs.Var(&modelNames, "model", "model name to target (repeatable; default: every loaded artifact, or the server's default model)")
	var (
		url       = fs.String("url", "", "fairserved base URL for HTTP mode (e.g. http://127.0.0.1:8080)")
		rate      = fs.Float64("rate", 500, "offered request arrival rate per second")
		requests  = fs.Int("requests", 1000, "total requests to schedule")
		seed      = fs.Int64("seed", 1, "workload seed: schedule and payloads are deterministic in it")
		dim       = fs.Int("dim", 0, "feature dimensionality (0 = discover from the target)")
		maxBatch  = fs.Int("max-batch", load.DefaultMaxBatch, "largest batch size; sizes are Zipf toward 1")
		zipfBatch = fs.Float64("zipf", load.DefaultZipfBatch, "Zipf exponent for batch sizes (>= 1)")
		zipfModel = fs.Float64("model-zipf", load.DefaultZipfModel, "Zipf exponent for model popularity (>= 1)")
		timeout   = fs.Duration("timeout", 0, "per-request client deadline (0 = none)")
		slo       = fs.Duration("slo", 0, "grade accepted-request p99 against this bound (0 = no SLO grading)")
		asJSON    = fs.Bool("json", false, "emit the full report as JSON instead of the summary")
		cpuProf   = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")

		workers     = fs.Int("workers", 0, "in-process: scoring workers per model (0 = GOMAXPROCS)")
		batch       = fs.Int("batch", 0, "in-process: micro-batch size per worker task (0 = 64)")
		maxConc     = fs.Int("max-concurrent", 0, "in-process: max concurrent batches per model (0 = unlimited)")
		maxQueue    = fs.Int("max-queue", 0, "in-process: admission queue depth (requires -max-concurrent)")
		queueBudget = fs.Duration("queue-budget", 0, "in-process: shed when estimated queue wait exceeds this (requires -max-concurrent)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*url == "") == (len(artifacts) == 0) {
		fs.Usage()
		return fmt.Errorf("exactly one of -url (HTTP mode) or -artifact (in-process mode) is required")
	}
	if *url != "" && (*workers != 0 || *batch != 0 || *maxConc != 0 || *maxQueue != 0 || *queueBudget != 0) {
		return fmt.Errorf("-workers/-batch/-max-concurrent/-max-queue/-queue-budget configure the in-process server; they have no effect with -url")
	}
	if *maxConc == 0 && (*maxQueue != 0 || *queueBudget != 0) {
		return fmt.Errorf("-max-queue and -queue-budget require -max-concurrent > 0")
	}
	if *dim < 0 {
		return fmt.Errorf("-dim must be >= 0, got %d", *dim)
	}
	if *cpuProf != "" {
		f, cerr := os.Create(*cpuProf)
		if cerr != nil {
			return cerr
		}
		defer cli.CloseCapture(&err, f)
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	cfg := load.Config{
		Rate:      *rate,
		Requests:  *requests,
		Seed:      *seed,
		Dim:       *dim,
		MaxBatch:  *maxBatch,
		ZipfBatch: *zipfBatch,
		Models:    modelNames,
		ZipfModel: *zipfModel,
		Timeout:   *timeout,
		SLO:       *slo,
	}

	var tgt load.Target
	if *url != "" {
		if cfg.Dim == 0 {
			name := ""
			if len(modelNames) == 1 {
				name = modelNames[0]
			}
			d, err := load.FetchDim(*url, name)
			if err != nil {
				return err
			}
			cfg.Dim = d
		}
		tgt = &load.HTTPTarget{BaseURL: *url}
	} else {
		reg := serve.NewRegistry(serve.Options{
			Workers:       *workers,
			BatchSize:     *batch,
			MaxConcurrent: *maxConc,
			MaxQueue:      *maxQueue,
			QueueBudget:   *queueBudget,
		})
		defer reg.Close()
		for _, spec := range artifacts {
			name, path := "", spec
			if i := strings.IndexByte(spec, '='); i >= 0 {
				name, path = spec[:i], spec[i+1:]
			}
			e, err := reg.Load(name, path)
			if err != nil {
				return err
			}
			if cfg.Dim == 0 {
				cfg.Dim = e.Model().Dim()
			} else if cfg.Dim != e.Model().Dim() && *dim == 0 {
				return fmt.Errorf("artifacts disagree on dimensionality (%d vs %d); pass -dim to pick one", cfg.Dim, e.Model().Dim())
			}
			if len(modelNames) == 0 {
				cfg.Models = append(cfg.Models, e.Name)
			}
		}
		tgt = &load.RegistryTarget{Registry: reg}
	}

	w, err := load.Build(cfg)
	if err != nil {
		return err
	}
	if !*asJSON {
		fmt.Fprintf(out, "workload:  %d requests, %d rows, fingerprint %s\n", len(w.Requests), w.TotalRows, w.Fingerprint()[:16])
	}

	rep := load.Run(ctx, w, tgt)
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	rep.Render(out)
	return nil
}
