// Command fairstream clusters a CSV dataset of any size on fixed
// memory with the summarize-then-solve pipeline: the file is streamed
// in chunks through a fair merge-and-reduce coreset (one stratum per
// combination of the sensitive columns, O(m·log n) retained rows per
// stratum), weighted FairKM solves on the summary, and a second
// streaming pass reports exact full-data fairness and utility for the
// resulting centroids.
//
// Usage:
//
//	fairstream -in data.csv -features f1,f2 -sensitive s1,s2 -k 5
//	           [-lambda L | -auto-lambda] [-m 64] [-block 128]
//	           [-chunk 4096] [-max-groups 256] [-seed S] [-max-iter N]
//	           [-tol T] [-parallel P] [-minmax] [-skip-eval]
//	           [-shards S] [-shard-workers W] [-merge-budget B]
//	           [-telemetry run.jsonl] [-save model.json]
//
// -telemetry streams a JSONL run journal of the summary solve (one
// record per iteration plus a final summary record) to the given path;
// with a fixed -seed every field is reproducible except elapsed_ns.
//
// With -minmax an extra leading pass computes per-column minima and
// ranges so features can be scaled to [0,1] on the fly — three
// sequential passes over the file, never more than one chunk in
// memory.
//
// With -shards S > 1 the file is split on row boundaries into S byte
// ranges (dataset.SplitCSV) that are summarized by S independent
// coreset builders on -shard-workers goroutines, then merged and
// solved — same fixed memory per shard, wall-clock bounded by the
// slowest shard instead of one sequential reader. Results are
// bit-identical for every -shard-workers value; -merge-budget caps the
// merged summary with one extra reduce pass.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
)

func main() { cli.Main("fairstream", run) }

// run executes the tool against the given arguments, writing the report
// to out. Split from main for testability. The named result lets the
// deferred close of the telemetry journal report a failed final flush
// instead of dropping it.
func run(args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("fairstream", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		in           = fs.String("in", "", "input CSV path (required; read up to three times, streaming)")
		features     = fs.String("features", "", "comma-separated numeric feature columns (required)")
		sensitive    = fs.String("sensitive", "", "comma-separated categorical sensitive columns (required; these stratify the coreset)")
		k            = fs.Int("k", 5, "number of clusters")
		lambda       = fs.Float64("lambda", 0, "fairness weight λ")
		autoLambda   = fs.Bool("auto-lambda", false, "use the paper's λ=(n/k)² heuristic (n = streamed rows)")
		m            = fs.Int("m", 64, "per-stratum coreset size of each merge-and-reduce level")
		block        = fs.Int("block", 0, "raw points buffered per stratum before compression (0 = 2m)")
		chunk        = fs.Int("chunk", 0, "CSV rows decoded per chunk (0 = 4096)")
		maxGroups    = fs.Int("max-groups", 0, "cap on realized sensitive-value combinations (0 = 256)")
		seed         = fs.Int64("seed", 1, "random seed (coreset sampling and solve)")
		maxIter      = fs.Int("max-iter", 30, "maximum round-robin iterations of the summary solve")
		tol          = fs.Float64("tol", 0, "stop when the objective improves by less than this (0 = zero-moves convergence)")
		parallel     = fs.Int("parallel", 0, "sweep workers for the summary solve: 0 sequential, -1 GOMAXPROCS, n workers")
		shards       = fs.Int("shards", 1, "split ingestion across this many independent summarizer shards (byte-range parallel file reads)")
		shardWorkers = fs.Int("shard-workers", 0, "concurrent shard ingest workers: 0 one per shard, -1 GOMAXPROCS, n workers (results are identical for every value)")
		mergeBudget  = fs.Int("merge-budget", 0, "cap the merged summary's row count; a larger union is reduced by one extra coreset pass (0 = never reduce)")
		minmax       = fs.Bool("minmax", false, "min-max scale features to [0,1] via an extra leading pass")
		skipEval     = fs.Bool("skip-eval", false, "skip the second full-data metrics pass")
		telem        = fs.String("telemetry", "", "write a JSONL run journal of the summary solve to this path")
		saveOut      = fs.String("save", "", "write the trained model artifact (centroids, λ, domains, scaling, provenance) to this path; serve it with fairserved")
		centsOut     = fs.String("centroids", "", "deprecated alias for -save (the CSV export lost the categorical domains and λ; the artifact keeps them)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *features == "" || *sensitive == "" {
		fs.Usage()
		return fmt.Errorf("-in, -features and -sensitive are required")
	}
	if *k < 1 {
		return fmt.Errorf("-k must be at least 1 (got %d)", *k)
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be at least 1 (got %d)", *shards)
	}
	if *mergeBudget < 0 {
		return fmt.Errorf("-merge-budget must be non-negative (got %d)", *mergeBudget)
	}
	if *shards == 1 && (*shardWorkers != 0 || *mergeBudget != 0) {
		return fmt.Errorf("-shard-workers and -merge-budget only apply to sharded ingestion; pass -shards > 1")
	}
	spec := dataset.CSVSpec{
		Features:             splitList(*features),
		CategoricalSensitive: splitList(*sensitive),
	}

	var scaleMins, scaleRanges []float64
	open := func() (pipeline.Source, *os.File, error) {
		f, err := os.Open(*in)
		if err != nil {
			return nil, nil, err
		}
		src, err := dataset.NewCSVStream(f, spec, *chunk)
		if err != nil {
			f.Close() //fairvet:ignore errflow -- read-only file closed on the error path; the stream error wins
			return nil, nil, err
		}
		if scaleMins != nil {
			return &scaledSource{src: src, mins: scaleMins, ranges: scaleRanges}, f, nil
		}
		return src, f, nil
	}

	// Optional pass 0: min-max statistics.
	if *minmax {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		src, err := dataset.NewCSVStream(f, spec, *chunk)
		if err != nil {
			f.Close() //fairvet:ignore errflow -- read-only file closed on the error path; the stream error wins
			return err
		}
		scaleMins, scaleRanges, err = scanMinMax(src)
		f.Close() //fairvet:ignore errflow -- file opened read-only; nothing was buffered to lose
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "min-max pass: scaled %d feature columns\n", len(scaleMins))
	}

	// Pass 1: summarize and solve — sequentially, or across byte-range
	// shards of the file when -shards asks for parallel ingestion.
	pcfg := pipeline.Config{
		K:           *k,
		Lambda:      *lambda,
		AutoLambda:  *autoLambda,
		CoresetSize: *m,
		BlockSize:   *block,
		MaxGroups:   *maxGroups,
		Seed:        *seed,
		MaxIter:     *maxIter,
		Tol:         *tol,
		Parallelism: *parallel,
	}
	var journal *telemetry.RunLog
	if *telem != "" {
		var cerr error
		journal, cerr = telemetry.CreateRunLog(*telem)
		if cerr != nil {
			return cerr
		}
		defer cli.CloseCapture(&retErr, journal)
		pcfg.Observer = journal.Observer("fairstream")
	}
	started := time.Now()
	var res *pipeline.Result
	if *shards > 1 {
		split, err := dataset.SplitCSV(*in, *shards)
		if err != nil {
			return err
		}
		srcs := make([]pipeline.Source, split.Shards())
		closers := make([]io.Closer, 0, split.Shards())
		closeAll := func() {
			for _, c := range closers {
				c.Close() //fairvet:ignore errflow -- shard readers are opened read-only; nothing was buffered to lose
			}
		}
		for i := range srcs {
			stream, closer, err := split.Open(i, spec, *chunk)
			if err != nil {
				closeAll()
				return err
			}
			closers = append(closers, closer)
			if scaleMins != nil {
				srcs[i] = &scaledSource{src: stream, mins: scaleMins, ranges: scaleRanges}
			} else {
				srcs[i] = stream
			}
		}
		res, err = pipeline.FitSharded(srcs, pipeline.ShardedConfig{
			Config:      pcfg,
			Workers:     *shardWorkers,
			MergeBudget: *mergeBudget,
		})
		closeAll()
		if err != nil {
			return err
		}
	} else {
		src, f, err := open()
		if err != nil {
			return err
		}
		res, err = pipeline.FitStream(src, pcfg)
		f.Close() //fairvet:ignore errflow -- file opened read-only; nothing was buffered to lose
		if err != nil {
			return err
		}
	}
	if journal != nil {
		journal.WriteSummary("fairstream", telemetry.RunSummary{
			Tool: "fairstream", K: *k, Lambda: res.Lambda, Seed: *seed, Rows: res.N,
			Iterations: res.Solve.Iterations, TotalMoves: res.Solve.TotalMoves,
			Converged: res.Solve.Converged, Objective: res.Solve.Objective,
			KMeansTerm: res.Solve.KMeansTerm, FairnessTerm: res.Solve.FairnessTerm,
			ElapsedNS: time.Since(started).Nanoseconds(),
		})
		if err := journal.Close(); err != nil {
			return fmt.Errorf("telemetry journal: %w", err)
		}
		fmt.Fprintf(out, "wrote run journal to %s\n", *telem)
	}
	fmt.Fprintf(out, "stream: n=%d rows in, %d summary rows out (%.1f× compression), %d strata\n",
		res.N, res.Summary.N(), float64(res.N)/float64(res.Summary.N()), res.Groups)
	if res.Shards > 1 {
		note := ""
		if res.Reduced {
			note = fmt.Sprintf(", union reduced to the %d-row budget", *mergeBudget)
		}
		fmt.Fprintf(out, "sharded: %d byte-range shards ingested in parallel%s\n", res.Shards, note)
	}
	fmt.Fprintf(out, "solve:  k=%d lambda=%.4g iterations=%d converged=%v\n",
		*k, res.Lambda, res.Solve.Iterations, res.Solve.Converged)
	fmt.Fprintf(out, "  summary objective=%.4f (K-Means term %.4f + λ·fairness term %.6g)\n",
		res.Solve.Objective, res.Solve.KMeansTerm, res.Solve.FairnessTerm)
	fmt.Fprintf(out, "  cluster masses: %s\n", formatMasses(res.Solve.Masses))

	if *centsOut != "" {
		fmt.Fprintf(out, "warning: -centroids is a deprecated alias for -save; the artifact replaces the lossy centroid CSV\n")
		if *saveOut == "" {
			*saveOut = *centsOut
		}
	}
	if *saveOut != "" {
		art, err := model.New(res.Summary, res.SummaryWeights, res.Solve, model.Provenance{
			Tool: "fairstream", Seed: *seed, Rows: res.N,
		})
		if err != nil {
			return err
		}
		if scaleMins != nil {
			art.Scaling = &model.Scaling{Kind: "minmax", Mins: scaleMins, Ranges: scaleRanges}
		}
		if err := model.Save(*saveOut, art); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote model artifact to %s (serve with: fairserved -model %s)\n", *saveOut, *saveOut)
	}

	if *skipEval {
		return nil
	}

	// Pass 2: exact full-data metrics for the deployed centroids.
	src2, f2, err := open()
	if err != nil {
		return err
	}
	ev, err := pipeline.Evaluate(src2, res.Solve.Centroids, res.Lambda)
	f2.Close() //fairvet:ignore errflow -- file opened read-only; nothing was buffered to lose
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nfull data (nearest-centroid deployment, n=%d):\n", ev.N)
	fmt.Fprintf(out, "  objective=%.4f (K-Means term %.4f + λ·fairness term %.6g)\n",
		ev.Value.Objective, ev.Value.KMeansTerm, ev.Value.FairnessTerm)
	fmt.Fprintf(out, "  cluster sizes: %v\n", ev.Sizes)
	for _, rep := range ev.Fairness {
		fmt.Fprintf(out, "  %-20s AE=%.4f AW=%.4f ME=%.4f MW=%.4f\n",
			rep.Attribute, rep.AE, rep.AW, rep.ME, rep.MW)
	}
	return nil
}

// scanMinMax streams the source once, accumulating per-column minima
// and ranges.
func scanMinMax(src pipeline.Source) (mins, ranges []float64, err error) {
	var maxs []float64
	for {
		chunk, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		if mins == nil {
			mins = make([]float64, chunk.Dim())
			maxs = make([]float64, chunk.Dim())
			for j := range mins {
				mins[j] = chunk.Features[0][j]
				maxs[j] = chunk.Features[0][j]
			}
		}
		for _, row := range chunk.Features {
			for j, v := range row {
				if v < mins[j] {
					mins[j] = v
				}
				if v > maxs[j] {
					maxs[j] = v
				}
			}
		}
	}
	if mins == nil {
		return nil, nil, fmt.Errorf("empty input")
	}
	ranges = make([]float64, len(mins))
	for j := range ranges {
		ranges[j] = maxs[j] - mins[j]
	}
	return mins, ranges, nil
}

// scaledSource applies the min-max transform to every chunk in flight.
type scaledSource struct {
	src    pipeline.Source
	mins   []float64
	ranges []float64
}

func (s *scaledSource) Next() (*dataset.Dataset, error) {
	chunk, err := s.src.Next()
	if err != nil {
		return nil, err
	}
	for _, row := range chunk.Features {
		for j, v := range row {
			if s.ranges[j] > 0 {
				row[j] = (v - s.mins[j]) / s.ranges[j]
			} else {
				row[j] = 0
			}
		}
	}
	return chunk, nil
}

func formatMasses(masses []float64) string {
	parts := make([]string, len(masses))
	for i, m := range masses {
		parts[i] = strconv.FormatFloat(m, 'f', 1, 64)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
