package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/stats"
)

// writeTestCSV creates a clusterable CSV with two sensitive columns,
// big enough that the coreset stream actually compresses.
func writeTestCSV(t *testing.T, rows int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	var b strings.Builder
	b.WriteString("x,y,grp,reg\n")
	rng := stats.NewRNG(5)
	for i := 0; i < rows; i++ {
		blob := float64(i%3) * 8
		g := "a"
		if i%4 == 0 {
			g = "b"
		}
		reg := []string{"n", "s", "e"}[i%3]
		fmt.Fprintf(&b, "%.4f,%.4f,%s,%s\n",
			rng.Gaussian(blob, 0.6), rng.Gaussian(100+blob, 6), g, reg)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFairstreamEndToEnd(t *testing.T) {
	csv := writeTestCSV(t, 1200)
	saveOut := filepath.Join(t.TempDir(), "stream.model.json")
	var buf bytes.Buffer
	err := run([]string{
		"-in", csv, "-features", "x,y", "-sensitive", "grp,reg",
		"-k", "3", "-auto-lambda", "-m", "24", "-chunk", "100",
		"-minmax", "-save", saveOut,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"min-max pass", "stream:", "compression", "solve:",
		"full data", "cluster sizes", "grp", "reg", "mean",
		"wrote model artifact",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	m, err := model.Load(saveOut)
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 3 || m.Dim() != 2 || m.Provenance.Tool != "fairstream" {
		t.Errorf("artifact = k%d dim%d tool %q", m.K, m.Dim(), m.Provenance.Tool)
	}
	if m.Provenance.Rows != 1200 {
		t.Errorf("artifact stands for %d rows, want 1200 (the streamed count, not the summary size)", m.Provenance.Rows)
	}
	if m.Lambda <= 0 {
		t.Errorf("artifact lost lambda: %v", m.Lambda)
	}
	if m.Scaling == nil || m.Scaling.Kind != "minmax" {
		t.Error("artifact lost the min-max scaling parameters")
	}
	var names []string
	for _, s := range m.Sensitive {
		names = append(names, s.Name)
		if len(s.Values) == 0 {
			t.Errorf("attribute %q lost its domain", s.Name)
		}
	}
	if !reflect.DeepEqual(names, []string{"grp", "reg"}) {
		t.Errorf("artifact sensitive attributes = %v", names)
	}
}

// TestFairstreamCentroidsAlias: the legacy -centroids flag now emits
// the artifact (with a deprecation warning), not the lossy CSV.
func TestFairstreamCentroidsAlias(t *testing.T) {
	csv := writeTestCSV(t, 400)
	aliasOut := filepath.Join(t.TempDir(), "alias.model.json")
	var buf bytes.Buffer
	err := run([]string{
		"-in", csv, "-features", "x,y", "-sensitive", "grp",
		"-k", "2", "-lambda", "50", "-m", "16", "-skip-eval",
		"-centroids", aliasOut,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "deprecated") {
		t.Error("no deprecation warning for -centroids")
	}
	if _, err := model.Load(aliasOut); err != nil {
		t.Errorf("-centroids did not write a loadable artifact: %v", err)
	}
}

// TestFairstreamSharded drives the byte-range sharded ingestion path:
// the report shows the shard count, and the full output — summary,
// solve and second-pass metrics — is identical for every worker count.
func TestFairstreamSharded(t *testing.T) {
	csv := writeTestCSV(t, 1200)
	runSharded := func(workers string) string {
		t.Helper()
		var buf bytes.Buffer
		err := run([]string{
			"-in", csv, "-features", "x,y", "-sensitive", "grp,reg",
			"-k", "3", "-auto-lambda", "-m", "24", "-chunk", "100",
			"-shards", "3", "-shard-workers", workers,
		}, &buf)
		if err != nil {
			t.Fatalf("run(workers=%s): %v\noutput:\n%s", workers, err, buf.String())
		}
		return buf.String()
	}
	out := runSharded("1")
	for _, want := range []string{"n=1200", "sharded: 3 byte-range shards", "full data"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	for _, workers := range []string{"2", "3", "-1"} {
		if got := runSharded(workers); got != out {
			t.Errorf("-shard-workers %s changed the report:\n--- workers=1\n%s\n--- workers=%s\n%s", workers, out, workers, got)
		}
	}
}

// TestFairstreamShardedMergeBudget: an undersized budget triggers the
// reduce pass and the report says so.
func TestFairstreamShardedMergeBudget(t *testing.T) {
	csv := writeTestCSV(t, 1200)
	var buf bytes.Buffer
	err := run([]string{
		"-in", csv, "-features", "x,y", "-sensitive", "grp,reg",
		"-k", "3", "-auto-lambda", "-m", "32", "-chunk", "100",
		"-shards", "4", "-merge-budget", "60", "-skip-eval",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "union reduced to the 60-row budget") {
		t.Errorf("no reduce note in:\n%s", buf.String())
	}
}

func TestFairstreamSkipEval(t *testing.T) {
	csv := writeTestCSV(t, 400)
	var buf bytes.Buffer
	err := run([]string{
		"-in", csv, "-features", "x,y", "-sensitive", "grp",
		"-k", "2", "-lambda", "50", "-m", "16", "-skip-eval",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	if strings.Contains(buf.String(), "full data") {
		t.Errorf("-skip-eval still ran the second pass:\n%s", buf.String())
	}
}

func TestFairstreamFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-features", "x"}, &buf); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "nope.csv", "-features", "x", "-sensitive", "g"}, &buf); err == nil {
		t.Error("nonexistent file accepted")
	}
}

// TestValidationAudit pins the CLI failure contract for fairstream.
func TestValidationAudit(t *testing.T) {
	cases := map[string][]string{
		"missing -in":         {"-features", "x", "-sensitive", "g"},
		"nonexistent input":   {"-in", "definitely/not/here.csv", "-features", "x", "-sensitive", "g"},
		"k zero":              {"-in", "x.csv", "-features", "x", "-sensitive", "g", "-k", "0"},
		"k negative":          {"-in", "x.csv", "-features", "x", "-sensitive", "g", "-k", "-1"},
		"unknown flag":        {"-in", "x.csv", "-features", "x", "-sensitive", "g", "-zap"},
		"shards zero":         {"-in", "x.csv", "-features", "x", "-sensitive", "g", "-shards", "0"},
		"negative budget":     {"-in", "x.csv", "-features", "x", "-sensitive", "g", "-merge-budget", "-5"},
		"budget sans shards":  {"-in", "x.csv", "-features", "x", "-sensitive", "g", "-merge-budget", "60"},
		"workers sans shards": {"-in", "x.csv", "-features", "x", "-sensitive", "g", "-shard-workers", "2"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(args, &buf); err == nil {
				t.Errorf("run(%v) accepted a bad invocation", args)
			}
		})
	}
}

// TestFairstreamJournal: -telemetry writes a JSONL journal of the
// summary solve whose iter records and summary survive a fixed-seed
// rerun byte-identically apart from the wall-clock elapsed stamps.
func TestFairstreamJournal(t *testing.T) {
	csv := writeTestCSV(t, 900)
	dir := t.TempDir()
	journalRun := func(path string) string {
		t.Helper()
		var buf bytes.Buffer
		err := run([]string{
			"-in", csv, "-features", "x,y", "-sensitive", "grp",
			"-k", "3", "-auto-lambda", "-m", "24", "-chunk", "100",
			"-seed", "4", "-skip-eval", "-telemetry", path,
		}, &buf)
		if err != nil {
			t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
		}
		if !strings.Contains(buf.String(), "wrote run journal") {
			t.Errorf("no journal confirmation:\n%s", buf.String())
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	first := journalRun(filepath.Join(dir, "a.jsonl"))
	lines := strings.Split(strings.TrimSuffix(first, "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("journal has %d lines:\n%s", len(lines), first)
	}
	var sum struct {
		Type string `json:"type"`
		Run  string `json:"run"`
		Tool string `json:"tool"`
		Rows int    `json:"rows"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Type != "summary" || sum.Run != "fairstream" || sum.Tool != "fairstream" || sum.Rows != 900 {
		t.Errorf("summary = %+v", sum)
	}

	second := journalRun(filepath.Join(dir, "b.jsonl"))
	elapsed := regexp.MustCompile(`"elapsed_ns":\d+`)
	if elapsed.ReplaceAllString(first, "") != elapsed.ReplaceAllString(second, "") {
		t.Errorf("fixed-seed journals differ beyond elapsed_ns:\n--- a ---\n%s\n--- b ---\n%s", first, second)
	}
}
