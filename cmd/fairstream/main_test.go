package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/stats"
)

// writeTestCSV creates a clusterable CSV with two sensitive columns,
// big enough that the coreset stream actually compresses.
func writeTestCSV(t *testing.T, rows int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	var b strings.Builder
	b.WriteString("x,y,grp,reg\n")
	rng := stats.NewRNG(5)
	for i := 0; i < rows; i++ {
		blob := float64(i%3) * 8
		g := "a"
		if i%4 == 0 {
			g = "b"
		}
		reg := []string{"n", "s", "e"}[i%3]
		fmt.Fprintf(&b, "%.4f,%.4f,%s,%s\n",
			rng.Gaussian(blob, 0.6), rng.Gaussian(100+blob, 6), g, reg)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFairstreamEndToEnd(t *testing.T) {
	csv := writeTestCSV(t, 1200)
	centsOut := filepath.Join(t.TempDir(), "cents.csv")
	var buf bytes.Buffer
	err := run([]string{
		"-in", csv, "-features", "x,y", "-sensitive", "grp,reg",
		"-k", "3", "-auto-lambda", "-m", "24", "-chunk", "100",
		"-minmax", "-centroids", centsOut,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"min-max pass", "stream:", "compression", "solve:",
		"full data", "cluster sizes", "grp", "reg", "mean",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(centsOut)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 4 { // header + 3 centroids
		t.Errorf("centroid file has %d lines, want 4:\n%s", lines, data)
	}
	if !strings.HasPrefix(string(data), "cluster,x,y") {
		t.Errorf("centroid header wrong:\n%s", data)
	}
}

func TestFairstreamSkipEval(t *testing.T) {
	csv := writeTestCSV(t, 400)
	var buf bytes.Buffer
	err := run([]string{
		"-in", csv, "-features", "x,y", "-sensitive", "grp",
		"-k", "2", "-lambda", "50", "-m", "16", "-skip-eval",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	if strings.Contains(buf.String(), "full data") {
		t.Errorf("-skip-eval still ran the second pass:\n%s", buf.String())
	}
}

func TestFairstreamFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-features", "x"}, &buf); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "nope.csv", "-features", "x", "-sensitive", "g"}, &buf); err == nil {
		t.Error("nonexistent file accepted")
	}
}
