package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// modRel resolves a module-root-relative path to an absolute one by
// walking up to go.mod — robust to run() having already moved the
// process working directory to the module root in an earlier test.
func modRel(t *testing.T, rel string) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return filepath.Join(dir, rel)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatalf("no go.mod above the test working directory")
		}
		dir = parent
	}
}

// fixture returns the absolute path to the CI self-check fixture, one
// known violation per pass.
func fixture(t *testing.T) string {
	return modRel(t, "internal/analysis/testdata/src/selfcheck")
}

// TestSelfCheck mirrors the CI step: fairvet against the selfcheck
// fixture must fail and report at least one finding from every pass.
func TestSelfCheck(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{fixture(t)}, &buf)
	if err == nil {
		t.Fatalf("fairvet passed the selfcheck fixture; output:\n%s", buf.String())
	}
	out := buf.String()
	for _, pass := range []string{"nodeterminism", "atomicfield", "ctxflow", "cliexit", "floateq"} {
		if !strings.Contains(out, "["+pass+"]") {
			t.Errorf("self-check output missing a [%s] finding:\n%s", pass, out)
		}
	}
}

// TestPassesFilter runs only one pass over the fixture: findings from
// the others must not appear.
func TestPassesFilter(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-passes", "floateq", fixture(t)}, &buf)
	if err == nil {
		t.Fatal("floateq alone should still fail the fixture")
	}
	out := buf.String()
	if !strings.Contains(out, "[floateq]") {
		t.Errorf("missing floateq finding:\n%s", out)
	}
	if strings.Contains(out, "[cliexit]") || strings.Contains(out, "[nodeterminism]") {
		t.Errorf("pass filter leaked other passes:\n%s", out)
	}
}

// TestCleanPackage pins a known-clean package analyzing to zero
// findings (internal/cli's os.Exit is the sanctioned site, outside
// cmd/, so cliexit must not fire).
func TestCleanPackage(t *testing.T) {
	abs := modRel(t, "internal/cli")
	var buf bytes.Buffer
	if err := run([]string{abs}, &buf); err != nil {
		t.Fatalf("internal/cli should be fairvet-clean, got %v:\n%s", err, buf.String())
	}
}

// TestList prints the suite.
func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, pass := range []string{"nodeterminism", "atomicfield", "ctxflow", "cliexit", "floateq"} {
		if !strings.Contains(buf.String(), pass) {
			t.Errorf("-list output missing %s:\n%s", pass, buf.String())
		}
	}
}

// TestValidationAudit pins the exit-2 contract inputs: bad invocations
// must return errors, never panic.
func TestValidationAudit(t *testing.T) {
	cases := map[string][]string{
		"unknown flag":    {"-zap"},
		"unknown pass":    {"-passes", "nope"},
		"missing pattern": {"./no/such/dir/anywhere"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(args, &buf); err == nil {
				t.Errorf("fairvet accepted a bad invocation: %v", args)
			}
		})
	}
}
