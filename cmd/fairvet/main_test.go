package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// modRel resolves a module-root-relative path to an absolute one by
// walking up to go.mod — robust to run() having already moved the
// process working directory to the module root in an earlier test.
func modRel(t *testing.T, rel string) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return filepath.Join(dir, rel)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatalf("no go.mod above the test working directory")
		}
		dir = parent
	}
}

// fixture returns the absolute path to the CI self-check fixture, one
// known violation per pass.
func fixture(t *testing.T) string {
	return modRel(t, "internal/analysis/testdata/src/selfcheck")
}

// allPasses is the full suite, mirrored in -list order; the selfcheck
// fixture seeds one violation for each.
var allPasses = []string{"nodeterminism", "atomicfield", "ctxflow", "cliexit", "floateq", "lockcheck", "errflow", "hotalloc"}

// TestSelfCheck mirrors the CI step: fairvet against the selfcheck
// fixture must fail and report at least one finding from every pass.
func TestSelfCheck(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{fixture(t)}, &buf)
	if err == nil {
		t.Fatalf("fairvet passed the selfcheck fixture; output:\n%s", buf.String())
	}
	out := buf.String()
	for _, pass := range allPasses {
		if !strings.Contains(out, "["+pass+"]") {
			t.Errorf("self-check output missing a [%s] finding:\n%s", pass, out)
		}
	}
}

// TestJSONOutput pins the -json machine contract: one JSON object per
// line with file/line/col/pass/message, equivalent to the text mode
// finding-for-finding, and no stray non-JSON output.
func TestJSONOutput(t *testing.T) {
	var text, jsonBuf bytes.Buffer
	if err := run([]string{fixture(t)}, &text); err == nil {
		t.Fatal("selfcheck fixture must fail in text mode")
	}
	if err := run([]string{"-json", fixture(t)}, &jsonBuf); err == nil {
		t.Fatal("selfcheck fixture must fail in -json mode")
	}
	textLines := strings.Split(strings.TrimSpace(text.String()), "\n")
	jsonLines := strings.Split(strings.TrimSpace(jsonBuf.String()), "\n")
	if len(textLines) != len(jsonLines) {
		t.Fatalf("text mode emitted %d findings, -json %d; modes must agree\ntext:\n%s\njson:\n%s",
			len(textLines), len(jsonLines), text.String(), jsonBuf.String())
	}
	seenPasses := map[string]bool{}
	for i, line := range jsonLines {
		var f struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Pass    string `json:"pass"`
			Message string `json:"message"`
		}
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("line %d is not a JSON finding: %v\n%s", i+1, err, line)
		}
		if f.File == "" || f.Line == 0 || f.Col == 0 || f.Pass == "" || f.Message == "" {
			t.Errorf("line %d has empty fields: %+v", i+1, f)
		}
		seenPasses[f.Pass] = true
		// The corresponding text line carries the same position and pass.
		want := fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Pass, f.Message)
		if textLines[i] != want {
			t.Errorf("finding %d diverges between modes:\ntext: %s\njson: %s", i+1, textLines[i], want)
		}
	}
	for _, pass := range allPasses {
		if !seenPasses[pass] {
			t.Errorf("-json output missing a %s finding", pass)
		}
	}
}

// TestPassesFilter runs only one pass over the fixture: findings from
// the others must not appear.
func TestPassesFilter(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-passes", "floateq", fixture(t)}, &buf)
	if err == nil {
		t.Fatal("floateq alone should still fail the fixture")
	}
	out := buf.String()
	if !strings.Contains(out, "[floateq]") {
		t.Errorf("missing floateq finding:\n%s", out)
	}
	if strings.Contains(out, "[cliexit]") || strings.Contains(out, "[nodeterminism]") {
		t.Errorf("pass filter leaked other passes:\n%s", out)
	}
}

// TestCleanPackage pins a known-clean package analyzing to zero
// findings (internal/cli's os.Exit is the sanctioned site, outside
// cmd/, so cliexit must not fire).
func TestCleanPackage(t *testing.T) {
	abs := modRel(t, "internal/cli")
	var buf bytes.Buffer
	if err := run([]string{abs}, &buf); err != nil {
		t.Fatalf("internal/cli should be fairvet-clean, got %v:\n%s", err, buf.String())
	}
}

// TestList prints the suite.
func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, pass := range allPasses {
		if !strings.Contains(buf.String(), pass) {
			t.Errorf("-list output missing %s:\n%s", pass, buf.String())
		}
	}
}

// TestValidationAudit pins the exit-2 contract inputs: bad invocations
// must return errors, never panic.
func TestValidationAudit(t *testing.T) {
	cases := map[string][]string{
		"unknown flag":    {"-zap"},
		"unknown pass":    {"-passes", "nope"},
		"missing pattern": {"./no/such/dir/anywhere"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(args, &buf); err == nil {
				t.Errorf("fairvet accepted a bad invocation: %v", args)
			}
		})
	}
}
