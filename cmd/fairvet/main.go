// Command fairvet runs the repository's static-analysis suite — the
// machine-checked form of the determinism, concurrency and CLI
// contracts DESIGN.md states in prose:
//
//	fairvet [-passes p1,p2] [-json] [packages...]
//
// With no arguments it analyzes every package in the module (./...).
// Arguments may be package patterns (./internal/..., repro/cmd/fairkm)
// or plain directories; directories are loaded directly, so fixture
// packages under testdata/ — which wildcard patterns never match —
// can be named explicitly (the CI self-check does exactly that).
//
// Passes: nodeterminism, atomicfield, ctxflow, cliexit, floateq,
// lockcheck, errflow, hotalloc (see internal/analysis). Findings print
// one per line as file:line:col: [pass] message — or, with -json, as
// one JSON object per line with file/line/col/pass/message fields for
// machine consumers — and any finding makes the command fail with the
// standard exit-2 contract, so `make lint` stays red until the tree is
// clean or every exception carries a justified //fairvet:ignore
// directive. The suite runs together per package (RunSuite), which
// also reports stale directives that no longer suppress anything.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"repro/internal/analysis"
	"repro/internal/cli"
)

func main() { cli.Main("fairvet", run) }

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fairvet", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		passes  = fs.String("passes", "", "comma-separated subset of passes to run (default: all)")
		list    = fs.Bool("list", false, "list available passes and exit")
		jsonOut = fs.Bool("json", false, "emit findings as JSON, one object per line")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	suite := analysis.Analyzers()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(out, "%-15s %s\n", a.Name, a.Doc)
		}
		return nil
	}
	if *passes != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(*passes, ",") {
			a, ok := byName[name]
			if !ok {
				return fmt.Errorf("unknown pass %q (run fairvet -list)", name)
			}
			picked = append(picked, a)
		}
		suite = picked
	}

	// Resolve explicit directory arguments to absolute paths before
	// moving to the module root, so `fairvet some/dir` works from any
	// subdirectory.
	patterns := fs.Args()
	abs := make(map[string]string)
	for _, p := range patterns {
		if st, err := os.Stat(p); err == nil && st.IsDir() {
			a, err := filepath.Abs(p)
			if err != nil {
				return err
			}
			abs[p] = a
		}
	}
	root, err := analysis.ChdirModuleRoot()
	if err != nil {
		return err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return err
	}

	loader := analysis.NewLoader()
	var pkgs []*analysis.Package
	var listPatterns []string
	for _, p := range patterns {
		dir, isDir := abs[p]
		if !isDir {
			listPatterns = append(listPatterns, p)
			continue
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return fmt.Errorf("%s: directory is outside the module", p)
		}
		pkg, err := loader.LoadDir(dir, modPath+"/"+filepath.ToSlash(rel))
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
	}
	if len(listPatterns) > 0 || len(patterns) == 0 {
		loaded, err := loader.LoadPatterns(listPatterns...)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, loaded...)
	}

	enc := json.NewEncoder(out)
	findings := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunSuite(suite, pkg)
		if err != nil {
			return err
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			rel := pos.Filename
			if r, err := filepath.Rel(root, pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
				rel = r
			}
			if *jsonOut {
				if err := enc.Encode(jsonFinding{
					File:    rel,
					Line:    pos.Line,
					Col:     pos.Column,
					Pass:    d.Pass,
					Message: d.Message,
				}); err != nil {
					return err
				}
			} else {
				fmt.Fprintf(out, "%s:%d:%d: [%s] %s\n", rel, pos.Line, pos.Column, d.Pass, d.Message)
			}
			findings++
		}
	}
	if findings > 0 {
		return fmt.Errorf("%d finding(s); fix them or add //fairvet:ignore <pass> -- <reason>", findings)
	}
	return nil
}

// jsonFinding is the -json line format: a stable machine contract,
// one object per finding per line.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Pass    string `json:"pass"`
	Message string `json:"message"`
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	m := moduleRe.FindSubmatch(data)
	if m == nil {
		return "", fmt.Errorf("%s: no module line", gomod)
	}
	return string(m[1]), nil
}
