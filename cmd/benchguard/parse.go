package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// event is the subset of the test2json record benchguard needs.
type event struct {
	Action  string
	Package string
	Test    string
	Output  string
}

// nsOpRE matches the timing column of a benchmark result line. The
// benchmark name is NOT taken from the text (test2json splits the
// name and the numbers into separate output events); it comes from
// the event's Test field.
var nsOpRE = regexp.MustCompile(`(\d+(?:\.\d+)?) ns/op`)

// parseStream reads a `go test -bench -json` event stream and returns
// the minimum ns/op observed per benchmark. Keys are
// "package:Benchmark/sub" so identically named benchmarks in
// different packages can share one recording. Non-benchmark events
// and unparseable lines (e.g. a truncated tail from an interrupted
// run) are skipped; only an empty result is an error.
func parseStream(r io.Reader) (map[string]float64, error) {
	// Benchmark output arrives split across events: one event carries
	// the padded name, a later one the "N\t ns/op" columns. Buffer
	// output per (package, test) and regex the whole thing at the end.
	bufs := make(map[string]*strings.Builder)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			continue
		}
		if ev.Action != "output" || ev.Test == "" || !strings.HasPrefix(ev.Test, "Benchmark") {
			continue
		}
		key := ev.Package + ":" + ev.Test
		b, ok := bufs[key]
		if !ok {
			b = &strings.Builder{}
			bufs[key] = b
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	res := make(map[string]float64)
	for key, b := range bufs {
		for _, m := range nsOpRE.FindAllStringSubmatch(b.String(), -1) {
			v, err := strconv.ParseFloat(m[1], 64)
			if err != nil {
				continue
			}
			if best, ok := res[key]; !ok || v < best {
				res[key] = v
			}
		}
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("no benchmark results found")
	}
	return res, nil
}
