// Command benchguard compares two recorded `go test -bench -json`
// event streams and fails when a benchmark regressed past a
// tolerance. It is the automated form of the "re-recorded
// BENCH_*.json must stay within 5% of the frozen baseline" rule the
// Makefile has documented in prose since PR 2:
//
//	benchguard -baseline BENCH_sweep.json -current BENCH_engine.json \
//	    -match 'BenchmarkSweep|BenchmarkBestMove' -tol 0.05
//
// Exit codes: 0 all matched benchmarks within tolerance, 1 usage or
// parse error (including a baseline benchmark missing from the
// current recording), 2 at least one regression.
//
// Only ns/op is compared. When a stream holds several samples of the
// same benchmark (-count > 1), the minimum is used on both sides —
// the repeatable floor of the kernel, not scheduler noise.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "", "frozen `go test -bench -json` event stream")
		currentPath  = flag.String("current", "", "freshly recorded event stream to check")
		match        = flag.String("match", ".", "regexp selecting benchmark names to compare")
		tol          = flag.Float64("tol", 0.05, "allowed fractional ns/op increase over baseline")
	)
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "usage: benchguard -baseline FILE -current FILE [-match RE] [-tol FRAC]")
		os.Exit(1)
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: bad -match: %v\n", err)
		os.Exit(1)
	}

	base, err := parseFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
	cur, err := parseFile(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}

	rep := compare(base, cur, re, *tol)
	for _, line := range rep.lines {
		fmt.Println(line)
	}
	switch {
	case rep.regressions > 0:
		fmt.Fprintf(os.Stderr, "benchguard: %d regression(s) beyond %.0f%%\n", rep.regressions, *tol*100)
		os.Exit(2)
	case rep.missing > 0:
		fmt.Fprintf(os.Stderr, "benchguard: %d baseline benchmark(s) missing from current recording\n", rep.missing)
		os.Exit(1)
	case rep.compared == 0:
		fmt.Fprintf(os.Stderr, "benchguard: -match %q selected no benchmarks\n", *match)
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d benchmark(s) within %.0f%% of baseline\n", rep.compared, *tol*100)
}

func parseFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res, err := parseStream(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return res, nil
}

type report struct {
	lines       []string
	compared    int
	regressions int
	missing     int
}

// compare checks every baseline benchmark whose name matches re
// against the current recording. Benchmarks only present in the
// current stream are ignored: new benchmarks get frozen into the
// baseline when it is re-recorded, they are not regressions.
func compare(base, cur map[string]float64, re *regexp.Regexp, tol float64) report {
	names := make([]string, 0, len(base))
	for name := range base {
		if re.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var rep report
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			rep.missing++
			rep.lines = append(rep.lines, fmt.Sprintf("MISSING %-60s baseline %.0f ns/op", name, b))
			continue
		}
		rep.compared++
		ratio := c / b
		verdict := "ok"
		if ratio > 1+tol {
			verdict = "REGRESSED"
			rep.regressions++
		}
		rep.lines = append(rep.lines, fmt.Sprintf("%-9s %-60s %12.0f -> %12.0f ns/op  (%+.1f%%)",
			verdict, name, b, c, (ratio-1)*100))
	}
	return rep
}
