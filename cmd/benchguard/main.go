// Command benchguard compares two recorded `go test -bench -json`
// event streams and fails when a benchmark regressed past a
// tolerance. It is the automated form of the "re-recorded
// BENCH_*.json must stay within 5% of the frozen baseline" rule the
// Makefile has documented in prose since PR 2:
//
//	benchguard -baseline BENCH_sweep.json -current BENCH_engine.json \
//	    -match 'BenchmarkSweep|BenchmarkBestMove' -tol 0.05
//
// Success exits 0. Every failure — bad invocation, unparseable
// stream, a baseline benchmark missing from the current recording, a
// regression beyond tolerance, or a -match selecting nothing —
// follows the repository CLI contract via internal/cli.Main: one
// explanatory line on stderr and exit code 2. The per-benchmark
// verdict table always goes to stdout before the verdict.
//
// Only ns/op is compared. When a stream holds several samples of the
// same benchmark (-count > 1), the minimum is used on both sides —
// the repeatable floor of the kernel, not scheduler noise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"

	"repro/internal/cli"
)

func main() { cli.Main("benchguard", run) }

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		baselinePath = fs.String("baseline", "", "frozen `go test -bench -json` event stream")
		currentPath  = fs.String("current", "", "freshly recorded event stream to check")
		match        = fs.String("match", ".", "regexp selecting benchmark names to compare")
		tol          = fs.Float64("tol", 0.05, "allowed fractional ns/op increase over baseline")
		renameFrom   = fs.String("rename-from", "", "regexp rewritten in each selected baseline name before the current-stream lookup (with -rename-to; compares variant pairs, e.g. telemetry=off vs telemetry=on)")
		renameTo     = fs.String("rename-to", "", "replacement for -rename-from matches")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *baselinePath == "" || *currentPath == "" {
		fs.Usage()
		return fmt.Errorf("-baseline and -current are required")
	}
	if *tol < 0 {
		return fmt.Errorf("-tol must be non-negative (got %v)", *tol)
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		return fmt.Errorf("bad -match: %w", err)
	}
	if (*renameFrom == "") != (*renameTo == "") {
		return fmt.Errorf("-rename-from and -rename-to must be given together")
	}
	var rename *regexp.Regexp
	if *renameFrom != "" {
		rename, err = regexp.Compile(*renameFrom)
		if err != nil {
			return fmt.Errorf("bad -rename-from: %w", err)
		}
	}

	base, err := parseFile(*baselinePath)
	if err != nil {
		return err
	}
	cur, err := parseFile(*currentPath)
	if err != nil {
		return err
	}

	rep := compare(base, cur, re, *tol, rename, *renameTo)
	for _, line := range rep.lines {
		fmt.Fprintln(out, line)
	}
	switch {
	case rep.regressions > 0:
		return fmt.Errorf("%d regression(s) beyond %.0f%%", rep.regressions, *tol*100)
	case rep.missing > 0:
		return fmt.Errorf("%d baseline benchmark(s) missing from current recording", rep.missing)
	case rep.compared == 0:
		return fmt.Errorf("-match %q selected no benchmarks", *match)
	}
	fmt.Fprintf(out, "benchguard: %d benchmark(s) within %.0f%% of baseline\n", rep.compared, *tol*100)
	return nil
}

func parseFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //fairvet:ignore errflow -- file opened read-only; nothing was buffered to lose
	res, err := parseStream(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return res, nil
}

type report struct {
	lines       []string
	compared    int
	regressions int
	missing     int
}

// compare checks every baseline benchmark whose name matches re
// against the current recording. Benchmarks only present in the
// current stream are ignored: new benchmarks get frozen into the
// baseline when it is re-recorded, they are not regressions. A
// non-nil rename rewrites each selected baseline name before the
// current-stream lookup, turning the comparison into a variant pair
// within one recording (baseline variant vs renamed variant).
func compare(base, cur map[string]float64, re *regexp.Regexp, tol float64, rename *regexp.Regexp, renameTo string) report {
	names := make([]string, 0, len(base))
	for name := range base {
		if re.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var rep report
	for _, name := range names {
		b := base[name]
		key := name
		if rename != nil {
			key = rename.ReplaceAllString(name, renameTo)
		}
		c, ok := cur[key]
		if !ok {
			rep.missing++
			rep.lines = append(rep.lines, fmt.Sprintf("MISSING %-60s baseline %.0f ns/op", key, b))
			continue
		}
		rep.compared++
		ratio := c / b
		verdict := "ok"
		if ratio > 1+tol {
			verdict = "REGRESSED"
			rep.regressions++
		}
		rep.lines = append(rep.lines, fmt.Sprintf("%-9s %-60s %12.0f -> %12.0f ns/op  (%+.1f%%)",
			verdict, key, b, c, (ratio-1)*100))
	}
	return rep
}
