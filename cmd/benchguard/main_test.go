package main

import (
	"fmt"
	"math"
	"regexp"
	"strings"
	"testing"
)

// stream builds a test2json-shaped event stream with the name and the
// numbers split across output events, the way `go test -json`
// actually emits benchmark results.
func stream(results ...[3]string) string { // {test, nsOp, extra}
	var b strings.Builder
	b.WriteString(`{"Action":"start","Package":"repro/internal/x"}` + "\n")
	b.WriteString(`{"Action":"output","Package":"repro/internal/x","Output":"goos: linux\n"}` + "\n")
	for _, r := range results {
		test, ns := r[0], r[1]
		fmt.Fprintf(&b, `{"Action":"run","Package":"repro/internal/x","Test":%q}`+"\n", test)
		fmt.Fprintf(&b, `{"Action":"output","Package":"repro/internal/x","Test":%q,"Output":%q}`+"\n",
			test, test+"         \t")
		fmt.Fprintf(&b, `{"Action":"output","Package":"repro/internal/x","Test":%q,"Output":%q}`+"\n",
			test, "     307\t   "+ns+" ns/op\t       0 B/op\t       0 allocs/op\n")
	}
	return b.String()
}

func TestParseStreamSplitLines(t *testing.T) {
	got, err := parseStream(strings.NewReader(stream(
		[3]string{"BenchmarkSweep/aggregate", "4051944", ""},
		[3]string{"BenchmarkServe/kernel=indexed/k=150", "1690000.5", ""},
	)))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"repro/internal/x:BenchmarkSweep/aggregate":            4051944,
		"repro/internal/x:BenchmarkServe/kernel=indexed/k=150": 1690000.5,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for k, v := range want {
		if math.Abs(got[k]-v) > 1e-9 {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
}

func TestParseStreamMinOfCount(t *testing.T) {
	// -count 3 repeats the same benchmark; the floor wins.
	got, err := parseStream(strings.NewReader(stream(
		[3]string{"BenchmarkLloyd/kernel=pruned/k=50", "500", ""},
		[3]string{"BenchmarkLloyd/kernel=pruned/k=50", "450", ""},
		[3]string{"BenchmarkLloyd/kernel=pruned/k=50", "520", ""},
	)))
	if err != nil {
		t.Fatal(err)
	}
	if v := got["repro/internal/x:BenchmarkLloyd/kernel=pruned/k=50"]; v != 450 {
		t.Fatalf("min ns/op = %v, want 450", v)
	}
}

func TestParseStreamEmpty(t *testing.T) {
	if _, err := parseStream(strings.NewReader(`{"Action":"start","Package":"p"}` + "\n")); err == nil {
		t.Fatal("want error on stream with no benchmark results")
	}
}

func TestCompareVerdicts(t *testing.T) {
	base := map[string]float64{
		"p:BenchmarkSweep/naive":  1000,
		"p:BenchmarkSweep/fused":  1000,
		"p:BenchmarkGone":         1000,
		"p:BenchmarkOther/ignore": 1000,
	}
	cur := map[string]float64{
		"p:BenchmarkSweep/naive": 1049, // +4.9%: within tolerance
		"p:BenchmarkSweep/fused": 1051, // +5.1%: regression
		"p:BenchmarkNew":         10,   // only in current: ignored
	}
	rep := compare(base, cur, regexp.MustCompile(`BenchmarkSweep|BenchmarkGone`), 0.05)
	if rep.compared != 2 {
		t.Errorf("compared = %d, want 2", rep.compared)
	}
	if rep.regressions != 1 {
		t.Errorf("regressions = %d, want 1", rep.regressions)
	}
	if rep.missing != 1 {
		t.Errorf("missing = %d, want 1", rep.missing)
	}
	joined := strings.Join(rep.lines, "\n")
	if !strings.Contains(joined, "REGRESSED") || !strings.Contains(joined, "fused") {
		t.Errorf("report missing REGRESSED fused line:\n%s", joined)
	}
	if strings.Contains(joined, "ignore") || strings.Contains(joined, "BenchmarkNew") {
		t.Errorf("report leaked unmatched/new benchmarks:\n%s", joined)
	}
}

func TestCompareImprovementIsOK(t *testing.T) {
	base := map[string]float64{"p:BenchmarkX": 1000}
	cur := map[string]float64{"p:BenchmarkX": 400}
	rep := compare(base, cur, regexp.MustCompile(`.`), 0.05)
	if rep.regressions != 0 || rep.missing != 0 || rep.compared != 1 {
		t.Fatalf("improvement misreported: %+v", rep)
	}
}
