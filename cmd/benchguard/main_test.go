package main

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// stream builds a test2json-shaped event stream with the name and the
// numbers split across output events, the way `go test -json`
// actually emits benchmark results.
func stream(results ...[3]string) string { // {test, nsOp, extra}
	var b strings.Builder
	b.WriteString(`{"Action":"start","Package":"repro/internal/x"}` + "\n")
	b.WriteString(`{"Action":"output","Package":"repro/internal/x","Output":"goos: linux\n"}` + "\n")
	for _, r := range results {
		test, ns := r[0], r[1]
		fmt.Fprintf(&b, `{"Action":"run","Package":"repro/internal/x","Test":%q}`+"\n", test)
		fmt.Fprintf(&b, `{"Action":"output","Package":"repro/internal/x","Test":%q,"Output":%q}`+"\n",
			test, test+"         \t")
		fmt.Fprintf(&b, `{"Action":"output","Package":"repro/internal/x","Test":%q,"Output":%q}`+"\n",
			test, "     307\t   "+ns+" ns/op\t       0 B/op\t       0 allocs/op\n")
	}
	return b.String()
}

func TestParseStreamSplitLines(t *testing.T) {
	got, err := parseStream(strings.NewReader(stream(
		[3]string{"BenchmarkSweep/aggregate", "4051944", ""},
		[3]string{"BenchmarkServe/kernel=indexed/k=150", "1690000.5", ""},
	)))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"repro/internal/x:BenchmarkSweep/aggregate":            4051944,
		"repro/internal/x:BenchmarkServe/kernel=indexed/k=150": 1690000.5,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for k, v := range want {
		if math.Abs(got[k]-v) > 1e-9 {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
}

func TestParseStreamMinOfCount(t *testing.T) {
	// -count 3 repeats the same benchmark; the floor wins.
	got, err := parseStream(strings.NewReader(stream(
		[3]string{"BenchmarkLloyd/kernel=pruned/k=50", "500", ""},
		[3]string{"BenchmarkLloyd/kernel=pruned/k=50", "450", ""},
		[3]string{"BenchmarkLloyd/kernel=pruned/k=50", "520", ""},
	)))
	if err != nil {
		t.Fatal(err)
	}
	if v := got["repro/internal/x:BenchmarkLloyd/kernel=pruned/k=50"]; v != 450 {
		t.Fatalf("min ns/op = %v, want 450", v)
	}
}

func TestParseStreamEmpty(t *testing.T) {
	if _, err := parseStream(strings.NewReader(`{"Action":"start","Package":"p"}` + "\n")); err == nil {
		t.Fatal("want error on stream with no benchmark results")
	}
}

func TestCompareVerdicts(t *testing.T) {
	base := map[string]float64{
		"p:BenchmarkSweep/naive":  1000,
		"p:BenchmarkSweep/fused":  1000,
		"p:BenchmarkGone":         1000,
		"p:BenchmarkOther/ignore": 1000,
	}
	cur := map[string]float64{
		"p:BenchmarkSweep/naive": 1049, // +4.9%: within tolerance
		"p:BenchmarkSweep/fused": 1051, // +5.1%: regression
		"p:BenchmarkNew":         10,   // only in current: ignored
	}
	rep := compare(base, cur, regexp.MustCompile(`BenchmarkSweep|BenchmarkGone`), 0.05, nil, "")
	if rep.compared != 2 {
		t.Errorf("compared = %d, want 2", rep.compared)
	}
	if rep.regressions != 1 {
		t.Errorf("regressions = %d, want 1", rep.regressions)
	}
	if rep.missing != 1 {
		t.Errorf("missing = %d, want 1", rep.missing)
	}
	joined := strings.Join(rep.lines, "\n")
	if !strings.Contains(joined, "REGRESSED") || !strings.Contains(joined, "fused") {
		t.Errorf("report missing REGRESSED fused line:\n%s", joined)
	}
	if strings.Contains(joined, "ignore") || strings.Contains(joined, "BenchmarkNew") {
		t.Errorf("report leaked unmatched/new benchmarks:\n%s", joined)
	}
}

func TestCompareImprovementIsOK(t *testing.T) {
	base := map[string]float64{"p:BenchmarkX": 1000}
	cur := map[string]float64{"p:BenchmarkX": 400}
	rep := compare(base, cur, regexp.MustCompile(`.`), 0.05, nil, "")
	if rep.regressions != 0 || rep.missing != 0 || rep.compared != 1 {
		t.Fatalf("improvement misreported: %+v", rep)
	}
}

// TestCompareRenamedPair: -rename-from/-rename-to rewrite each
// selected baseline name before the current lookup, comparing variant
// pairs within one recording (the telemetry-overhead guard shape:
// telemetry=on must stay within tolerance of telemetry=off).
func TestCompareRenamedPair(t *testing.T) {
	both := map[string]float64{
		"p:BenchmarkServeTelemetry/telemetry=off/workers=2": 1000,
		"p:BenchmarkServeTelemetry/telemetry=on/workers=2":  1030, // +3%: within
	}
	rep := compare(both, both, regexp.MustCompile(`telemetry=off`), 0.05,
		regexp.MustCompile(`telemetry=off`), "telemetry=on")
	if rep.compared != 1 || rep.regressions != 0 || rep.missing != 0 {
		t.Fatalf("renamed pair misreported: %+v", rep)
	}
	if !strings.Contains(rep.lines[0], "telemetry=on") {
		t.Errorf("report should show the renamed (current) name:\n%s", rep.lines[0])
	}

	slow := map[string]float64{
		"p:BenchmarkServeTelemetry/telemetry=off/workers=2": 1000,
		"p:BenchmarkServeTelemetry/telemetry=on/workers=2":  1100, // +10%: regression
	}
	rep = compare(slow, slow, regexp.MustCompile(`telemetry=off`), 0.05,
		regexp.MustCompile(`telemetry=off`), "telemetry=on")
	if rep.regressions != 1 {
		t.Fatalf("overhead regression not caught: %+v", rep)
	}
}

// writeStream drops a synthetic -json recording into dir.
func writeStream(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunVerdicts drives run end to end: within-tolerance passes,
// regression and missing-benchmark recordings return errors (which
// cli.Main turns into the one-line/exit-2 contract).
func TestRunVerdicts(t *testing.T) {
	dir := t.TempDir()
	base := writeStream(t, dir, "base.json", stream([3]string{"BenchmarkSweep/aggregate", "1000", ""}))
	ok := writeStream(t, dir, "ok.json", stream([3]string{"BenchmarkSweep/aggregate", "1040", ""}))
	bad := writeStream(t, dir, "bad.json", stream([3]string{"BenchmarkSweep/aggregate", "1200", ""}))
	other := writeStream(t, dir, "other.json", stream([3]string{"BenchmarkOther/x", "10", ""}))

	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", ok, "-match", "BenchmarkSweep"}, &buf); err != nil {
		t.Fatalf("within-tolerance run failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "within 5% of baseline") {
		t.Errorf("missing success summary:\n%s", buf.String())
	}
	if err := run([]string{"-baseline", base, "-current", bad, "-match", "BenchmarkSweep"}, &buf); err == nil || !strings.Contains(err.Error(), "regression") {
		t.Errorf("regression not reported, err=%v", err)
	}
	if err := run([]string{"-baseline", base, "-current", other, "-match", "BenchmarkSweep"}, &buf); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("missing benchmark not reported, err=%v", err)
	}
}

// TestBenchguardValidationAudit pins the CLI contract on bad
// invocations: every one must return an error, never panic or exit.
func TestBenchguardValidationAudit(t *testing.T) {
	dir := t.TempDir()
	base := writeStream(t, dir, "base.json", stream([3]string{"BenchmarkX", "100", ""}))
	cases := map[string][]string{
		"no files":              {},
		"missing current":       {"-baseline", base},
		"unknown flag":          {"-baseline", base, "-current", base, "-zap"},
		"bad match regexp":      {"-baseline", base, "-current", base, "-match", "("},
		"negative tol":          {"-baseline", base, "-current", base, "-tol", "-0.1"},
		"unreadable file":       {"-baseline", filepath.Join(dir, "nope.json"), "-current", base},
		"match selects nothing": {"-baseline", base, "-current", base, "-match", "BenchmarkNope"},
		"stray positional args": {"-baseline", base, "-current", base, "extra"},
		"rename-from alone":     {"-baseline", base, "-current", base, "-rename-from", "x"},
		"rename-to alone":       {"-baseline", base, "-current", base, "-rename-to", "y"},
		"bad rename regexp":     {"-baseline", base, "-current", base, "-rename-from", "(", "-rename-to", "y"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(args, &buf); err == nil {
				t.Errorf("benchguard accepted a bad invocation: %v", args)
			}
		})
	}
}
