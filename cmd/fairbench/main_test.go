package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/stats"
)

func writeCSV(t *testing.T, binary bool) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	var b strings.Builder
	b.WriteString("x,y,grp\n")
	rng := stats.NewRNG(4)
	vals := []string{"a", "b", "c"}
	if binary {
		vals = []string{"a", "b"}
	}
	for i := 0; i < 90; i++ {
		blob := float64(i%3) * 5
		fmt.Fprintf(&b, "%.4f,%.4f,%s\n",
			rng.Gaussian(blob, 0.5), rng.Gaussian(0, 0.5), vals[i%len(vals)])
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFairbenchEndToEnd(t *testing.T) {
	csv := writeCSV(t, true)
	var buf bytes.Buffer
	err := run([]string{"-in", csv, "-features", "x,y", "-sensitive", "grp", "-k", "3"}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"K-Means (blind)", "FairKM (all attrs)", "ZGYA(grp)",
		"Fairlet(grp)", "Bera (all attrs)", "FairSC (all attrs)",
		"FairKCenter(grp)", "GreedyCapture", "FairProj + K-Means",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "skipped") {
		t.Errorf("nothing should be skipped on this input:\n%s", out)
	}
}

func TestFairbenchSkipsFairletOnNonBinary(t *testing.T) {
	csv := writeCSV(t, false)
	var buf bytes.Buffer
	if err := run([]string{"-in", csv, "-features", "x,y", "-sensitive", "grp", "-k", "3"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), `skipped: attribute "grp" is not binary`) {
		t.Errorf("expected fairlet skip notice:\n%s", buf.String())
	}
}

func TestFairbenchValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("missing args accepted")
	}
	csv := writeCSV(t, true)
	if err := run([]string{"-in", csv, "-features", "x", "-sensitive", "grp", "-single-attr", "nope"}, &buf); err == nil {
		t.Error("unknown single-attr accepted")
	}
}

// TestValidationAudit pins the CLI failure contract for fairbench.
func TestValidationAudit(t *testing.T) {
	cases := map[string][]string{
		"missing -in":       {"-features", "x", "-sensitive", "g"},
		"nonexistent input": {"-in", "definitely/not/here.csv", "-features", "x", "-sensitive", "g"},
		"k zero":            {"-in", "x.csv", "-features", "x", "-sensitive", "g", "-k", "0"},
		"unknown flag":      {"-in", "x.csv", "-features", "x", "-sensitive", "g", "-zap"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(args, &buf); err == nil {
				t.Errorf("run(%v) accepted a bad invocation", args)
			}
		})
	}
}
