// Command fairbench compares every fair-clustering method in this
// repository on a user-supplied CSV dataset, reporting clustering
// quality (CO, SH), fairness (mean AE / MW across the sensitive
// attributes) and wall-clock per method.
//
// Usage:
//
//	fairbench -in data.csv -features f1,f2 -sensitive s1,s2 -k 5
//	          [-single-attr S] [-seed N] [-minmax=true] [-parallel P]
//	          [-budget D] [-trace]
//
// -budget bounds the wall-clock of each engine-based solver run
// (FairKM, K-Means, ZGYA); -trace prints their per-iteration progress.
//
// Methods needing a single sensitive attribute (ZGYA, fairlet, fair
// k-center) use -single-attr, defaulting to the first sensitive
// column. Fairlet additionally requires that attribute to be binary
// and is skipped otherwise; Bera's LP is skipped above 2000 rows (see
// internal/bera's cost note).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/bera"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/fairlet"
	"repro/internal/fairproj"
	"repro/internal/kcenter"
	"repro/internal/kmeans"
	"repro/internal/metrics"
	"repro/internal/proportional"
	"repro/internal/spectral"
	"repro/internal/zgya"
)

func main() { cli.Main("fairbench", run) }

// run executes the comparison; split from main for testability.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fairbench", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		in         = fs.String("in", "", "input CSV path (required)")
		features   = fs.String("features", "", "comma-separated numeric feature columns (required)")
		sensitive  = fs.String("sensitive", "", "comma-separated categorical sensitive columns (required)")
		k          = fs.Int("k", 5, "number of clusters")
		singleAttr = fs.String("single-attr", "", "attribute for single-attribute methods (default: first sensitive column)")
		seed       = fs.Int64("seed", 1, "random seed")
		minmax     = fs.Bool("minmax", true, "min-max normalize features")
		parallel   = fs.Int("parallel", 0, "engine sweep workers (FairKM/K-Means/ZGYA): 0 = sequential, -1 = GOMAXPROCS, n = n workers")
		budget     = fs.Duration("budget", 0, "wall-clock budget per engine-based solver run (0 = none)")
		trace      = fs.Bool("trace", false, "print one line per solver iteration")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *features == "" || *sensitive == "" {
		fs.Usage()
		return fmt.Errorf("-in, -features and -sensitive are required")
	}
	if *k < 1 {
		return fmt.Errorf("-k must be at least 1 (got %d)", *k)
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	ds, err := dataset.ReadCSV(f, dataset.CSVSpec{
		Features:             splitList(*features),
		CategoricalSensitive: splitList(*sensitive),
	})
	f.Close() //fairvet:ignore errflow -- file opened read-only; nothing was buffered to lose
	if err != nil {
		return err
	}
	if *minmax {
		ds.MinMaxNormalize()
	}
	attr := *singleAttr
	if attr == "" {
		attr = ds.Sensitive[0].Name
	}
	if ds.SensitiveByName(attr) == nil {
		return fmt.Errorf("no sensitive attribute %q", attr)
	}

	fmt.Fprintf(out, "fairbench: n=%d features=%d sensitive=%d k=%d single-attr=%s\n\n",
		ds.N(), ds.Dim(), len(ds.Sensitive), *k, attr)
	fmt.Fprintf(out, "%-22s %10s %8s %10s %10s %9s  %s\n",
		"method", "CO↓", "SH↑", "meanAE↓", "meanMW↓", "ms", "note")

	report := func(name, note string, assign []int, err error, start time.Time) {
		if err != nil {
			fmt.Fprintf(out, "%-22s %s\n", name, "skipped: "+err.Error())
			return
		}
		elapsed := float64(time.Since(start).Microseconds()) / 1000
		reps := metrics.FairnessAll(ds, assign, *k)
		mean := reps[len(reps)-1]
		fmt.Fprintf(out, "%-22s %10.4f %8.4f %10.4f %10.4f %9.2f  %s\n",
			name,
			metrics.CO(ds.Features, assign, *k),
			metrics.SilhouetteSampled(ds.Features, assign, *k, 2000, *seed),
			mean.AE, mean.MW, elapsed, note)
	}

	observer := func(label string) engine.Observer {
		if !*trace {
			return nil
		}
		return engine.TraceObserver(out, "trace "+label)
	}

	start := time.Now()
	km, err := kmeans.Run(ds.Features, kmeans.Config{K: *k, Seed: *seed, Parallelism: *parallel, Budget: *budget, Observer: observer("K-Means")})
	if err != nil {
		return err
	}
	report("K-Means (blind)", "", km.Assign, nil, start)

	start = time.Now()
	fkm, err := core.Run(ds, core.Config{K: *k, AutoLambda: true, Seed: *seed, Parallelism: *parallel, Budget: *budget, Observer: observer("FairKM")})
	report("FairKM (all attrs)", "λ=(n/k)²", assignOf(fkm), err, start)

	start = time.Now()
	zg, err := zgya.Run(ds, attr, zgya.Config{K: *k, AutoLambda: true, Seed: *seed, Parallelism: *parallel, Budget: *budget, Observer: observer("ZGYA")})
	report("ZGYA("+attr+")", "single attr", assignOfZ(zg), err, start)

	start = time.Now()
	if s := ds.SensitiveByName(attr); s.Cardinality() == 2 {
		fl, err := fairlet.Run(ds, attr, fairlet.Config{K: *k, Seed: *seed})
		report("Fairlet("+attr+")", "binary attr", assignOfF(fl), err, start)
	} else {
		fmt.Fprintf(out, "%-22s skipped: attribute %q is not binary\n", "Fairlet("+attr+")", attr)
	}

	start = time.Now()
	if ds.N() <= 2000 {
		br, err := bera.Run(ds, bera.Config{K: *k, Delta: bera.DefaultDelta, Seed: *seed})
		report("Bera (all attrs)", "LP + rounding", assignOfB(br), err, start)
	} else {
		fmt.Fprintf(out, "%-22s skipped: n=%d above the LP size cutoff (2000)\n", "Bera (all attrs)", ds.N())
	}

	start = time.Now()
	if ds.N() <= 2000 {
		sp, err := spectral.Run(ds, spectral.Config{K: *k, Fair: true, Seed: *seed})
		report("FairSC (all attrs)", "constrained spectral", assignOfS(sp), err, start)
	} else {
		fmt.Fprintf(out, "%-22s skipped: n=%d above the eigensolver cutoff (2000)\n", "FairSC (all attrs)", ds.N())
	}

	start = time.Now()
	kc, err := kcenter.Run(ds, kcenter.Config{K: *k, Attr: attr, Seed: *seed})
	report("FairKCenter("+attr+")", "center quotas", assignOfK(kc), err, start)

	start = time.Now()
	gc, err := proportional.GreedyCapture(ds.Features, *k)
	report("GreedyCapture", "attribute-agnostic", assignOfP(gc), err, start)

	start = time.Now()
	proj, err := fairproj.MeanDifferenceProjection(ds)
	if err == nil {
		var kmp *kmeans.Result
		kmp, err = kmeans.Run(proj.Features, kmeans.Config{K: *k, Seed: *seed})
		report("FairProj + K-Means", "space transformation", assignOfM(kmp), err, start)
	} else {
		report("FairProj + K-Means", "", nil, err, start)
	}
	return nil
}

// assignOf* unwrap result types that may be nil on error.
func assignOf(r *core.Result) []int {
	if r == nil {
		return nil
	}
	return r.Assign
}
func assignOfZ(r *zgya.Result) []int {
	if r == nil {
		return nil
	}
	return r.Assign
}
func assignOfF(r *fairlet.Result) []int {
	if r == nil {
		return nil
	}
	return r.Assign
}
func assignOfB(r *bera.Result) []int {
	if r == nil {
		return nil
	}
	return r.Assign
}
func assignOfS(r *spectral.Result) []int {
	if r == nil {
		return nil
	}
	return r.Assign
}
func assignOfK(r *kcenter.Result) []int {
	if r == nil {
		return nil
	}
	return r.Assign
}
func assignOfP(r *proportional.Result) []int {
	if r == nil {
		return nil
	}
	return r.Assign
}
func assignOfM(r *kmeans.Result) []int {
	if r == nil {
		return nil
	}
	return r.Assign
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
