// Command fairkm clusters a CSV dataset with FairKM and reports
// clustering quality and per-attribute fairness.
//
// Usage:
//
//	fairkm -in data.csv -features f1,f2 -sensitive s1,s2 -k 5
//	       [-numeric-sensitive a1,a2] [-lambda L | -auto-lambda]
//	       [-seed S] [-max-iter N] [-tol T] [-budget D] [-parallel P]
//	       [-trace] [-telemetry run.jsonl] [-assign out.csv]
//	       [-save model.json] [-compare]
//
// -telemetry streams a machine-readable run journal to the given path:
// one JSONL record per engine iteration ({iter, moves, objective,
// elapsed_ns}) plus a final summary record. With a fixed -seed every
// field is reproducible except elapsed_ns.
//
// -save writes the trained model as a versioned artifact (centroids,
// λ, categorical domains, min-max scaling, provenance) that
// cmd/fairserved serves and fairclust.LoadModel reads back
// bit-identically.
//
// With -compare it also runs S-blind K-Means on the same data and
// prints both result columns side by side, quantifying what fairness
// cost/benefit FairKM delivers on your data.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/kmeans"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/telemetry"
)

func main() { cli.Main("fairkm", run) }

// run executes the tool against the given arguments, writing the report
// to out. Split from main for testability.
// run's named result lets the deferred journal close report a failed
// final flush instead of dropping it.
func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("fairkm", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		in         = fs.String("in", "", "input CSV path (required)")
		features   = fs.String("features", "", "comma-separated numeric feature columns (required)")
		sensitive  = fs.String("sensitive", "", "comma-separated categorical sensitive columns")
		numSens    = fs.String("numeric-sensitive", "", "comma-separated numeric sensitive columns")
		k          = fs.Int("k", 5, "number of clusters")
		lambda     = fs.Float64("lambda", 0, "fairness weight λ (0 with -auto-lambda unset means plain K-Means behaviour)")
		autoLambda = fs.Bool("auto-lambda", false, "use the paper's λ=(n/k)² heuristic")
		seed       = fs.Int64("seed", 1, "random seed")
		maxIter    = fs.Int("max-iter", 30, "maximum round-robin iterations")
		tol        = fs.Float64("tol", 0, "stop when the objective improves by less than this between iterations (0 = exact zero-moves convergence)")
		budget     = fs.Duration("budget", 0, "wall-clock budget for the solve, e.g. 500ms (0 = none)")
		parallel   = fs.Int("parallel", 0, "sweep workers: 0 = paper's sequential Algorithm 1, -1 = GOMAXPROCS, n = n workers")
		trace      = fs.Bool("trace", false, "print one line per iteration (moves, objective, elapsed)")
		telem      = fs.String("telemetry", "", "write a JSONL run journal (per-iteration records plus a final summary) to this path")
		minmax     = fs.Bool("minmax", true, "min-max normalize features before clustering")
		assignOut  = fs.String("assign", "", "write per-row cluster assignments to this CSV")
		saveOut    = fs.String("save", "", "write the trained model artifact (centroids, λ, domains, scaling, provenance) to this path; serve it with fairserved")
		compare    = fs.Bool("compare", false, "also run S-blind K-Means and print both")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *features == "" {
		fs.Usage()
		return fmt.Errorf("-in and -features are required")
	}
	if *sensitive == "" && *numSens == "" {
		return fmt.Errorf("need at least one -sensitive or -numeric-sensitive column")
	}
	if *k < 1 {
		return fmt.Errorf("-k must be at least 1 (got %d)", *k)
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	ds, err := dataset.ReadCSV(f, dataset.CSVSpec{
		Features:             splitList(*features),
		CategoricalSensitive: splitList(*sensitive),
		NumericSensitive:     splitList(*numSens),
	})
	f.Close() //fairvet:ignore errflow -- file opened read-only; nothing was buffered to lose
	if err != nil {
		return err
	}
	var scaling *model.Scaling
	if *minmax {
		mins, ranges := ds.MinMaxNormalize()
		scaling = &model.Scaling{Kind: "minmax", Mins: mins, Ranges: ranges}
	}

	cfg := core.Config{
		K: *k, Lambda: *lambda, AutoLambda: *autoLambda,
		Seed: *seed, MaxIter: *maxIter, Tol: *tol, Budget: *budget,
		Parallelism: *parallel,
	}
	var traceObs engine.Observer
	if *trace {
		traceObs = engine.TraceObserver(out, "fairkm")
	}
	var journal *telemetry.RunLog
	if *telem != "" {
		journal, err = telemetry.CreateRunLog(*telem)
		if err != nil {
			return err
		}
		defer cli.CloseCapture(&err, journal)
		cfg.Observer = engine.Observers(traceObs, journal.Observer("fairkm"))
	} else {
		cfg.Observer = traceObs
	}
	started := time.Now()
	res, err := core.Run(ds, cfg)
	if err != nil {
		return err
	}
	if journal != nil {
		journal.WriteSummary("fairkm", telemetry.RunSummary{
			Tool: "fairkm", K: *k, Lambda: res.Lambda, Seed: *seed, Rows: ds.N(),
			Iterations: res.Iterations, TotalMoves: res.TotalMoves, Converged: res.Converged,
			Objective: res.Objective, KMeansTerm: res.KMeansTerm, FairnessTerm: res.FairnessTerm,
			ElapsedNS: time.Since(started).Nanoseconds(),
		})
		if err := journal.Close(); err != nil {
			return fmt.Errorf("telemetry journal: %w", err)
		}
		fmt.Fprintf(out, "wrote run journal to %s\n", *telem)
	}

	fmt.Fprintf(out, "FairKM: n=%d k=%d lambda=%.4g iterations=%d converged=%v\n",
		ds.N(), *k, res.Lambda, res.Iterations, res.Converged)
	fmt.Fprintf(out, "  objective=%.4f (K-Means term %.4f + λ·fairness term %.6g)\n",
		res.Objective, res.KMeansTerm, res.FairnessTerm)
	fmt.Fprintf(out, "  cluster sizes: %v\n", res.Sizes)

	report(out, "FairKM", ds, res.Assign, *k)

	if *compare {
		km, err := kmeans.Run(ds.Features, kmeans.Config{K: *k, Seed: *seed})
		if err != nil {
			return err
		}
		report(out, "K-Means(N) [S-blind]", ds, km.Assign, *k)
		fmt.Fprintf(out, "\nDeviation of FairKM from S-blind K-Means: DevC=%.4f DevO=%.4f\n",
			metrics.DevC(ds.Features, res.Assign, km.Assign, *k),
			metrics.DevO(res.Assign, km.Assign, *k, *k))
	}

	if *assignOut != "" {
		if err := writeAssignments(*assignOut, res.Assign); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote assignments to %s\n", *assignOut)
	}

	if *saveOut != "" {
		art, err := model.New(ds, nil, res, model.Provenance{Tool: "fairkm", Seed: *seed})
		if err != nil {
			return err
		}
		art.Scaling = scaling
		if err := model.Save(*saveOut, art); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote model artifact to %s (serve with: fairserved -model %s)\n", *saveOut, *saveOut)
	}
	return nil
}

func report(out io.Writer, name string, ds *dataset.Dataset, assign []int, k int) {
	fmt.Fprintf(out, "\n%s:\n", name)
	fmt.Fprintf(out, "  CO=%.4f  SH=%.4f\n",
		metrics.CO(ds.Features, assign, k),
		metrics.SilhouetteSampled(ds.Features, assign, k, 2000, 1))
	for _, rep := range metrics.FairnessAll(ds, assign, k) {
		fmt.Fprintf(out, "  %-20s AE=%.4f AW=%.4f ME=%.4f MW=%.4f\n",
			rep.Attribute, rep.AE, rep.AW, rep.ME, rep.MW)
	}
	for _, s := range ds.Sensitive {
		if s.Kind == dataset.Numeric {
			nrep := metrics.NumericFairness(s, assign, k)
			fmt.Fprintf(out, "  %-20s avgGap=%.4f maxGap=%.4f (numeric)\n",
				nrep.Attribute, nrep.AvgGap, nrep.MaxGap)
		}
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func writeAssignments(path string, assign []int) (err error) {
	f, cerr := os.Create(path)
	if cerr != nil {
		return cerr
	}
	defer cli.CloseCapture(&err, f)
	if _, err := fmt.Fprintln(f, "row,cluster"); err != nil {
		return err
	}
	for i, c := range assign {
		if _, err := fmt.Fprintf(f, "%d,%d\n", i, c); err != nil {
			return err
		}
	}
	return nil
}
