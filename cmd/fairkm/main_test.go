package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/stats"
)

// writeTestCSV creates a small clusterable CSV with a sensitive column.
func writeTestCSV(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	var b strings.Builder
	b.WriteString("x,y,grp,age\n")
	rng := stats.NewRNG(9)
	for i := 0; i < 80; i++ {
		blob := float64(i%2) * 6
		g := "a"
		if i%3 == 0 {
			g = "b"
		}
		fmt.Fprintf(&b, "%.4f,%.4f,%s,%.1f\n",
			rng.Gaussian(blob, 0.5), rng.Gaussian(0, 0.5), g, rng.Gaussian(40, 10))
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	csv := writeTestCSV(t)
	assignOut := filepath.Join(t.TempDir(), "assign.csv")
	var buf bytes.Buffer
	err := run([]string{
		"-in", csv, "-features", "x,y", "-sensitive", "grp",
		"-numeric-sensitive", "age",
		"-k", "2", "-auto-lambda", "-compare", "-assign", assignOut,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"FairKM:", "K-Means(N)", "grp", "DevC", "mean", "avgGap"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(assignOut)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 81 { // header + 80 rows
		t.Errorf("assignment file has %d lines, want 81", lines)
	}
}

func TestRunMissingArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("missing -in accepted")
	}
	csv := writeTestCSV(t)
	if err := run([]string{"-in", csv, "-features", "x,y"}, &buf); err == nil {
		t.Error("missing sensitive columns accepted")
	}
	if err := run([]string{"-in", "/nonexistent.csv", "-features", "x", "-sensitive", "g"}, &buf); err == nil {
		t.Error("nonexistent input accepted")
	}
	if err := run([]string{"-in", csv, "-features", "nope", "-sensitive", "grp"}, &buf); err == nil {
		t.Error("unknown feature column accepted")
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,c ")
	want := []string{"a", "b", "c"}
	if len(got) != 3 {
		t.Fatalf("splitList = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("splitList[%d] = %q", i, got[i])
		}
	}
	if splitList("") != nil {
		t.Error("empty list should be nil")
	}
}

// TestValidationAudit pins the CLI failure contract: every bad
// invocation returns a clear error from run (main converts it to exit
// code 2) and never panics.
func TestValidationAudit(t *testing.T) {
	cases := map[string][]string{
		"missing -in":       {"-features", "x", "-sensitive", "g"},
		"missing -features": {"-in", "x.csv", "-sensitive", "g"},
		"no sensitive":      {"-in", "x.csv", "-features", "x"},
		"nonexistent input": {"-in", "definitely/not/here.csv", "-features", "x", "-sensitive", "g"},
		"k zero":            {"-in", "x.csv", "-features", "x", "-sensitive", "g", "-k", "0"},
		"k negative":        {"-in", "x.csv", "-features", "x", "-sensitive", "g", "-k", "-3"},
		"unknown flag":      {"-in", "x.csv", "-features", "x", "-sensitive", "g", "-nope"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(args, &buf); err == nil {
				t.Errorf("run(%v) accepted a bad invocation", args)
			}
		})
	}
}

// TestRunSaveArtifact: -save writes a loadable artifact that carries
// the scaling, λ and sensitive domains of the run.
func TestRunSaveArtifact(t *testing.T) {
	csv := writeTestCSV(t)
	saveOut := filepath.Join(t.TempDir(), "km.model.json")
	var buf bytes.Buffer
	err := run([]string{
		"-in", csv, "-features", "x,y", "-sensitive", "grp",
		"-numeric-sensitive", "age", "-k", "3", "-auto-lambda",
		"-save", saveOut,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "wrote model artifact") {
		t.Errorf("no artifact confirmation:\n%s", buf.String())
	}
	m, err := model.Load(saveOut)
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 3 || m.Provenance.Tool != "fairkm" || m.Provenance.Rows != 80 {
		t.Errorf("artifact = k%d tool %q rows %d", m.K, m.Provenance.Tool, m.Provenance.Rows)
	}
	if m.Scaling == nil {
		t.Error("artifact lost the default -minmax scaling")
	}
	if len(m.Sensitive) != 2 || m.Sensitive[0].Kind != model.KindCategorical || m.Sensitive[1].Kind != model.KindNumeric {
		t.Errorf("artifact sensitive schema = %+v", m.Sensitive)
	}
}

// TestRunJournal pins the -telemetry contract: the journal is valid
// JSONL (iter records then one summary), and with a fixed seed two
// runs' journals are byte-identical once the wall-clock elapsed_ns
// stamps are normalized away — nothing else may vary.
func TestRunJournal(t *testing.T) {
	csv := writeTestCSV(t)
	journalRun := func(path string) string {
		t.Helper()
		var buf bytes.Buffer
		err := run([]string{
			"-in", csv, "-features", "x,y", "-sensitive", "grp",
			"-k", "2", "-auto-lambda", "-seed", "7", "-telemetry", path,
		}, &buf)
		if err != nil {
			t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
		}
		if !strings.Contains(buf.String(), "wrote run journal") {
			t.Errorf("no journal confirmation:\n%s", buf.String())
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	dir := t.TempDir()
	first := journalRun(filepath.Join(dir, "a.jsonl"))

	lines := strings.Split(strings.TrimSuffix(first, "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("journal has %d lines, want iter records plus a summary:\n%s", len(lines), first)
	}
	for i, line := range lines[:len(lines)-1] {
		var rec struct {
			Type string `json:"type"`
			Run  string `json:"run"`
			Iter int    `json:"iter"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, line)
		}
		if rec.Type != "iter" || rec.Run != "fairkm" || rec.Iter != i+1 {
			t.Errorf("line %d = %+v, want iter %d of run fairkm", i, rec, i+1)
		}
	}
	var sum struct {
		Type string `json:"type"`
		Tool string `json:"tool"`
		K    int    `json:"k"`
		Seed int64  `json:"seed"`
		Rows int    `json:"rows"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Type != "summary" || sum.Tool != "fairkm" || sum.K != 2 || sum.Seed != 7 || sum.Rows != 80 {
		t.Errorf("summary = %+v", sum)
	}

	second := journalRun(filepath.Join(dir, "b.jsonl"))
	elapsed := regexp.MustCompile(`"elapsed_ns":\d+`)
	normA := elapsed.ReplaceAllString(first, `"elapsed_ns":0`)
	normB := elapsed.ReplaceAllString(second, `"elapsed_ns":0`)
	if normA != normB {
		t.Errorf("fixed-seed journals differ beyond elapsed_ns:\n--- a ---\n%s\n--- b ---\n%s", first, second)
	}
}
