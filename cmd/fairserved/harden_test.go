package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// hardTestServer builds a handler over a registry with explicit serve
// options and handler options — the overload/hardening test rig.
func hardTestServer(t *testing.T, path string, so serve.Options, ho handlerOptions) (*httptest.Server, *serve.Registry) {
	t.Helper()
	srv, reg, _ := newTelemetryTestServer(t, path, so, ho)
	return srv, reg
}

// TestBodyLimits: oversized payloads get 413, garbage gets 400, and
// neither ever reaches the assigner.
func TestBodyLimits(t *testing.T) {
	dir := t.TempDir()
	path, _ := saveFixtureModel(t, dir, 11)
	ts, reg := hardTestServer(t, path, serve.Options{Workers: 1}, handlerOptions{MaxBody: 512})

	// A syntactically valid body that blows the 512-byte bound.
	big := map[string]any{"features": make([]float64, 4096)}
	resp, data := postJSON(t, ts.URL+"/v1/assign", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body = %d %s, want 413", resp.StatusCode, data)
	}
	var e map[string]string
	if err := json.Unmarshal(data, &e); err != nil || e["error"] == "" {
		t.Errorf("413 body not a JSON error: %s", data)
	}

	// Garbage bytes get 400, not a 500 or a hang.
	for name, body := range map[string]string{
		"not json":      "{not json at all",
		"trailing data": `{"features":[1,2,3]} {"x":1}`,
		"unknown field": `{"features":[1,2,3],"bogus":true}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/assign", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", name, resp.StatusCode)
		}
	}

	// The reload endpoint is bounded by the same limit.
	resp, err := http.Post(ts.URL+"/v1/models/reload", "application/json",
		bytes.NewReader(append([]byte(`{"path":"`), append(bytes.Repeat([]byte("x"), 2048), []byte(`"}`)...)...)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized reload = %d, want 413", resp.StatusCode)
	}

	// None of the rejects touched the model.
	e2, err := reg.Get("prod")
	if err != nil {
		t.Fatal(err)
	}
	if st := e2.Assigner().Stats(); st.Requests != 0 {
		t.Errorf("rejected bodies reached the assigner: %+v", st)
	}
}

// TestOverloadResponses wedges the single scoring slot and checks the
// wire contract: queued-over-capacity requests get 429 with a
// Retry-After header while the server stays healthy.
func TestOverloadResponses(t *testing.T) {
	dir := t.TempDir()
	path, _ := saveFixtureModel(t, dir, 12)
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	ts, reg := hardTestServer(t, path, serve.Options{
		Workers:       1,
		MaxConcurrent: 1,
		MaxQueue:      1,
		ScoreHook: func(rows int) {
			select {
			case entered <- struct{}{}:
				<-release // first scorer wedges until released
			default:
			}
		},
	}, handlerOptions{})

	body := []byte(`{"features":[0,1,2]}`)
	post := func() *http.Response {
		resp, err := http.Post(ts.URL+"/v1/assign", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			return nil
		}
		resp.Body.Close()
		return resp
	}

	first := make(chan *http.Response, 1)
	go func() { first <- post() }()
	<-entered // the slot is now held

	// Occupy the one queue spot.
	second := make(chan *http.Response, 1)
	go func() { second <- post() }()
	deadline := time.Now().Add(2 * time.Second)
	for {
		e, _ := reg.Get("prod")
		if st := e.Assigner().Stats(); st.Queued >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full: the third arrival is shed.
	resp := post()
	if resp == nil || resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-queue request = %v, want 429", resp)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want an integer >= 1s", resp.Header.Get("Retry-After"))
	}

	close(release)
	for _, ch := range []chan *http.Response{first, second} {
		select {
		case r := <-ch:
			if r == nil || r.StatusCode != http.StatusOK {
				t.Errorf("admitted request = %v, want 200", r)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("admitted request never completed")
		}
	}

	// The shed shows up in stats, /v1/models, and /metrics.
	e, _ := reg.Get("prod")
	if st := e.Assigner().Stats(); st.Shed != 1 || st.Requests != 2 {
		t.Errorf("stats after storm = %+v", st)
	}
	_, data := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(data), `fairserved_shed_total{model="prod"} 1`) {
		t.Errorf("/metrics missing shed counter:\n%s", data)
	}
	_, data = getBody(t, ts.URL+"/v1/models")
	var list struct {
		Models []modelInfo `json:"models"`
	}
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if list.Models[0].Shed != 1 {
		t.Errorf("/v1/models shed = %d, want 1", list.Models[0].Shed)
	}
}

// TestRequestTimeout503: a request that cannot finish inside
// -request-timeout fails with 503 and the deadline shows in metrics.
func TestRequestTimeout503(t *testing.T) {
	dir := t.TempDir()
	path, _ := saveFixtureModel(t, dir, 13)
	ts, _ := hardTestServer(t, path, serve.Options{
		Workers:       1,
		MaxConcurrent: 1,
		ScoreHook:     func(rows int) { time.Sleep(300 * time.Millisecond) },
	}, handlerOptions{RequestTimeout: 30 * time.Millisecond})

	resp, data := postJSON(t, ts.URL+"/v1/assign", map[string]any{"features": []float64{0, 1, 2}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("slow request = %d %s, want 503", resp.StatusCode, data)
	}
	_, data = getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(data), `fairserved_deadline_total{model="prod"} 1`) {
		t.Errorf("/metrics missing deadline counter:\n%s", data)
	}
}

// TestHardenedFlagValidation audits the new knobs' exit-code-2 paths.
func TestHardenedFlagValidation(t *testing.T) {
	dir := t.TempDir()
	path, _ := saveFixtureModel(t, dir, 14)
	m := "-model"
	cases := map[string][]string{
		"queue without concurrent":  {m, path, "-max-queue", "8"},
		"budget without concurrent": {m, path, "-queue-budget", "10ms"},
		"negative concurrent":       {m, path, "-max-concurrent", "-1"},
		"negative queue":            {m, path, "-max-concurrent", "2", "-max-queue", "-1"},
		"negative budget":           {m, path, "-max-concurrent", "2", "-queue-budget", "-1s"},
		"negative request timeout":  {m, path, "-request-timeout", "-1s"},
		"zero max body":             {m, path, "-max-body", "0"},
		"zero shutdown timeout":     {m, path, "-shutdown-timeout", "0s"},
		"negative shutdown timeout": {m, path, "-shutdown-timeout", "-5s"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			var buf bytes.Buffer
			if err := serveCtx(ctx, args, &buf); err == nil {
				t.Errorf("serveCtx(%v) accepted a bad invocation", args)
			}
		})
	}
}

// TestDebugMuxIsolation: pprof lives only on the opt-in -debug-addr
// mux; the serving mux must never expose it (profiling endpoints on a
// public port are a DoS and information leak).
func TestDebugMuxIsolation(t *testing.T) {
	dbg := httptest.NewServer(newDebugMux())
	defer dbg.Close()
	resp, err := http.Get(dbg.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("debug mux /debug/pprof/ = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(dbg.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("debug mux /debug/pprof/cmdline = %d, want 200", resp.StatusCode)
	}

	dir := t.TempDir()
	path, _ := saveFixtureModel(t, dir, 15)
	ts, _ := hardTestServer(t, path, serve.Options{Workers: 1}, handlerOptions{})
	for _, p := range []string{"/debug/pprof/", "/debug/pprof/profile", "/debug/pprof/heap"} {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("serving mux %s = %d, want 404", p, resp.StatusCode)
		}
	}
}
