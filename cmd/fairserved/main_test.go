package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/load"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/testfix"
)

// saveFixtureModel trains a tiny FairKM model and saves its artifact,
// returning the path and the in-memory model.
func saveFixtureModel(t *testing.T, dir string, seed int64) (string, *model.Model) {
	t.Helper()
	ds := testfix.Synth(seed, 200, 3, 1, 0)
	res, err := core.Run(ds, core.Config{K: 3, AutoLambda: true, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.New(ds, nil, res, model.Provenance{Tool: "test", Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("m%d.json", seed))
	if err := model.Save(path, m); err != nil {
		t.Fatal(err)
	}
	return path, m
}

// newTestServer loads one artifact into a registry-backed handler,
// with the full telemetry wiring (metric registry + request tracers)
// the real serveCtx uses.
func newTestServer(t *testing.T, path string) (*httptest.Server, *serve.Registry) {
	t.Helper()
	srv, reg, _ := newTelemetryTestServer(t, path, serve.Options{Workers: 2, BatchSize: 16}, handlerOptions{})
	return srv, reg
}

// newTelemetryTestServer is newTestServer with explicit serve/handler
// options, also exposing the telemetry state for trace assertions.
func newTelemetryTestServer(t *testing.T, path string, so serve.Options, ho handlerOptions) (*httptest.Server, *serve.Registry, *telemetryState) {
	t.Helper()
	tel := newTelemetryState()
	so.TracerFor = tel.tracerFor
	reg := serve.NewRegistry(so)
	if _, err := reg.Load("prod", path); err != nil {
		t.Fatal(err)
	}
	tel.watch(reg)
	srv := httptest.NewServer(newHandler(reg, tel, ho))
	t.Cleanup(func() { srv.Close(); reg.Close() })
	return srv, reg, tel
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestAssignEndpoint(t *testing.T) {
	dir := t.TempDir()
	path, m := saveFixtureModel(t, dir, 1)
	ts, _ := newTestServer(t, path)

	x := []float64{0.1, -0.4, 2.0}
	want := m.Assign(x)

	// Single form.
	resp, data := postJSON(t, ts.URL+"/v1/assign", map[string]any{"features": x})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single assign: %d %s", resp.StatusCode, data)
	}
	var single assignResponse
	if err := json.Unmarshal(data, &single); err != nil {
		t.Fatal(err)
	}
	if len(single.Assignments) != 1 || single.Assignments[0].Cluster != want {
		t.Errorf("single assign = %+v, want cluster %d", single, want)
	}
	if single.Model != "prod" || single.Generation != 1 {
		t.Errorf("response metadata = %q gen %d", single.Model, single.Generation)
	}

	// Batch form with sensitive values (drift fodder).
	rows := []map[string]any{
		{"features": []float64{0, 0, 0}, "sensitive": map[string]string{"cat0": "a"}},
		{"features": x, "sensitive": map[string]string{"cat0": "b"}},
		{"features": []float64{5, 5, 5}},
	}
	resp, data = postJSON(t, ts.URL+"/v1/assign", map[string]any{"rows": rows})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch assign: %d %s", resp.StatusCode, data)
	}
	var batch assignResponse
	if err := json.Unmarshal(data, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Assignments) != 3 {
		t.Fatalf("batch returned %d assignments", len(batch.Assignments))
	}
	if batch.Assignments[1].Cluster != want {
		t.Errorf("batch row 1 got cluster %d, want %d", batch.Assignments[1].Cluster, want)
	}

	// Bad requests error cleanly.
	for name, body := range map[string]any{
		"both forms":    map[string]any{"features": x, "rows": rows},
		"neither form":  map[string]any{},
		"unknown model": map[string]any{"model": "nope", "features": x},
		"bad dim":       map[string]any{"features": []float64{1}},
		"unknown field": map[string]any{"features": x, "extra": 1},
	} {
		resp, data := postJSON(t, ts.URL+"/v1/assign", body)
		if resp.StatusCode == http.StatusOK {
			t.Errorf("%s: accepted: %s", name, data)
		}
		var e map[string]string
		if err := json.Unmarshal(data, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body not JSON: %s", name, data)
		}
	}
	if resp, _ := getBody(t, ts.URL+"/v1/assign"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/assign = %d, want 405", resp.StatusCode)
	}
}

func TestModelsAndMetricsEndpoints(t *testing.T) {
	dir := t.TempDir()
	path, m := saveFixtureModel(t, dir, 2)
	ts, _ := newTestServer(t, path)

	// Generate some traffic first.
	attr := m.Sensitive[m.CategoricalAttrs()[0]].Name
	for i := 0; i < 5; i++ {
		postJSON(t, ts.URL+"/v1/assign", map[string]any{
			"features":  []float64{float64(i), 0, 1},
			"sensitive": map[string]string{attr: "a"},
		})
	}

	resp, data := getBody(t, ts.URL+"/v1/models")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/models: %d", resp.StatusCode)
	}
	var list struct {
		Default string      `json:"default"`
		Models  []modelInfo `json:"models"`
	}
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if list.Default != "prod" || len(list.Models) != 1 {
		t.Fatalf("models list = %s", data)
	}
	mi := list.Models[0]
	if mi.Requests != 5 || mi.Rows != 5 || mi.K != m.K || !mi.Default {
		t.Errorf("model info = %+v", mi)
	}
	if len(mi.Drift) == 0 || mi.Drift[0].ObservedRows != 5 {
		t.Errorf("drift info = %+v", mi.Drift)
	}

	resp, data = getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); !strings.Contains(got, "version=0.0.4") {
		t.Errorf("/metrics content type = %q", got)
	}
	text := string(data)
	for _, want := range []string{
		`fairserved_requests_total{model="prod"} 5`,
		`fairserved_rows_total{model="prod"} 5`,
		"# TYPE fairserved_request_latency_seconds histogram",
		`fairserved_request_latency_seconds_bucket{model="prod",le="+Inf"} 5`,
		`fairserved_request_latency_seconds_count{model="prod"} 5`,
		`fairserved_request_stage_seconds_count{model="prod",stage="total"} 5`,
		`fairserved_request_stage_seconds_count{model="prod",stage="admission"} 5`,
		`fairserved_model_generation{model="prod"} 1`,
		// Label keys render in sorted order: attribute before model.
		`fairserved_drift_observed_rows{attribute="` + attr + `",model="prod"} 5`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}

	// The flight recorder saw the same five requests.
	resp, data = getBody(t, ts.URL+"/debug/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces: %d", resp.StatusCode)
	}
	var traces struct {
		Traces []map[string]any `json:"traces"`
	}
	if err := json.Unmarshal(data, &traces); err != nil {
		t.Fatalf("/debug/traces body: %v\n%s", err, data)
	}
	if len(traces.Traces) != 5 {
		t.Errorf("/debug/traces has %d traces, want 5:\n%s", len(traces.Traces), data)
	}
	for _, tr := range traces.Traces {
		if tr["model"] != "prod" || tr["outcome"] != "ok" {
			t.Errorf("trace = %v", tr)
		}
	}

	resp, data = getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"ok"`) {
		t.Errorf("/healthz = %d %s", resp.StatusCode, data)
	}
}

// TestReloadEndpoint hot-swaps the artifact file under the server and
// checks traffic flips to the new model while the old one finishes.
func TestReloadEndpoint(t *testing.T) {
	dir := t.TempDir()
	path, m1 := saveFixtureModel(t, dir, 3)
	ts, _ := newTestServer(t, path)

	// A probe row the two models label differently would be ideal, but
	// generation + lambda are model-identity enough for the endpoint
	// test (determinism is covered in internal/serve).
	pathB, m2 := saveFixtureModel(t, dir, 4)

	resp, data := postJSON(t, ts.URL+"/v1/models/reload", map[string]any{"model": "prod", "path": pathB})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %d %s", resp.StatusCode, data)
	}
	var rr map[string]any
	if err := json.Unmarshal(data, &rr); err != nil {
		t.Fatal(err)
	}
	if rr["generation"].(float64) != 2 || rr["path"].(string) != pathB {
		t.Errorf("reload response = %s", data)
	}

	resp, data = getBody(t, ts.URL+"/v1/models")
	var list struct {
		Models []modelInfo `json:"models"`
	}
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if got := list.Models[0].Provenance.Seed; got != m2.Provenance.Seed || got == m1.Provenance.Seed {
		t.Errorf("after reload provenance seed = %v (old %v, new %v)", got, m1.Provenance.Seed, m2.Provenance.Seed)
	}
	if list.Models[0].Generation != 2 {
		t.Errorf("after reload generation = %d, want 2", list.Models[0].Generation)
	}

	// Reload of an unknown model 404s/400s without damage.
	resp, _ = postJSON(t, ts.URL+"/v1/models/reload", map[string]any{"model": "ghost"})
	if resp.StatusCode == http.StatusOK {
		t.Error("reload of unknown model succeeded")
	}

	// Reload with a broken artifact leaves the old model serving.
	bad := filepath.Join(dir, "bad.json")
	if err := writeFile(bad, "{not json"); err != nil {
		t.Fatal(err)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/models/reload", map[string]any{"model": "prod", "path": bad})
	if resp.StatusCode == http.StatusOK {
		t.Error("reload of broken artifact succeeded")
	}
	resp, data = postJSON(t, ts.URL+"/v1/assign", map[string]any{"features": []float64{1, 2, 3}})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("assign after failed reload: %d %s", resp.StatusCode, data)
	}
}

// TestServeCtxEndToEnd boots the real server on an ephemeral port,
// exercises it over TCP, then cancels the context and expects a
// graceful shutdown — the CI smoke path.
func TestServeCtxEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path, _ := saveFixtureModel(t, dir, 5)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncLineWriter{addr: make(chan string, 1)}
	done := make(chan error, 1)
	go func() { done <- serveCtx(ctx, []string{"-model", "prod=" + path, "-addr", "127.0.0.1:0"}, out) }()

	var base string
	select {
	case addr := <-out.addr:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited early: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never reported its address")
	}

	if resp, data := getBody(t, base+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d %s", resp.StatusCode, data)
	}
	resp, data := postJSON(t, base+"/v1/assign", map[string]any{"features": []float64{0, 1, 2}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/assign = %d %s", resp.StatusCode, data)
	}
	if resp, data := getBody(t, base+"/metrics"); resp.StatusCode != http.StatusOK ||
		!strings.Contains(string(data), "fairserved_requests_total") ||
		!strings.Contains(string(data), "fairserved_request_stage_seconds_bucket") {
		t.Fatalf("/metrics = %d %s", resp.StatusCode, data)
	}
	if resp, data := getBody(t, base+"/debug/traces"); resp.StatusCode != http.StatusOK ||
		!strings.Contains(string(data), `"outcome"`) {
		t.Fatalf("/debug/traces = %d %s", resp.StatusCode, data)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("no shutdown log:\n%s", out.String())
	}
}

func TestServedValidationAudit(t *testing.T) {
	cases := map[string][]string{
		"no models":        {},
		"missing artifact": {"-model", "no/such/model.json"},
		"unknown flag":     {"-zap"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			var buf bytes.Buffer
			if err := serveCtx(ctx, args, &buf); err == nil {
				t.Errorf("serveCtx(%v) accepted a bad invocation", args)
			}
		})
	}
}

// syncLineWriter buffers server output and signals the listen address.
type syncLineWriter struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	addr chan string
	sent bool
}

func (w *syncLineWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.sent {
		if s := w.buf.String(); strings.Contains(s, "listening on http://") {
			rest := s[strings.Index(s, "listening on http://")+len("listening on http://"):]
			if i := strings.IndexAny(rest, " \n"); i > 0 {
				w.addr <- rest[:i]
				w.sent = true
			}
		}
	}
	return len(p), nil
}

func (w *syncLineWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// promHistogramQuantile computes the nearest-rank quantile from the
// cumulative `le` buckets of one histogram series in a Prometheus
// text exposition.
func promHistogramQuantile(t *testing.T, text, family, labels string, q float64) time.Duration {
	t.Helper()
	var n uint64
	countPrefix := family + "_count{" + labels + "} "
	bucketPrefix := family + "_bucket{" + labels + ",le=\""
	type bucket struct {
		le  float64
		cum uint64
	}
	var buckets []bucket
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, countPrefix); ok {
			c, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				t.Fatalf("bad _count line %q: %v", line, err)
			}
			n = c
		}
		if rest, ok := strings.CutPrefix(line, bucketPrefix); ok {
			leStr, cumStr, ok := strings.Cut(rest, "\"} ")
			if !ok {
				t.Fatalf("bad _bucket line %q", line)
			}
			if leStr == "+Inf" {
				continue
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				t.Fatalf("bad le in %q: %v", line, err)
			}
			cum, err := strconv.ParseUint(cumStr, 10, 64)
			if err != nil {
				t.Fatalf("bad count in %q: %v", line, err)
			}
			buckets = append(buckets, bucket{le, cum})
		}
	}
	if n == 0 || len(buckets) == 0 {
		t.Fatalf("no %s{%s} histogram in exposition:\n%s", family, labels, text)
	}
	rank := uint64(math.Ceil(q * float64(n)))
	for _, b := range buckets {
		if b.cum >= rank {
			return time.Duration(b.le * float64(time.Second))
		}
	}
	t.Fatalf("rank %d beyond the last finite bucket (n=%d)", rank, n)
	return 0
}

// TestMetricsP99AgreesWithLoad is the end-to-end acceptance check for
// the histogram-backed /metrics: an open-loop fairload run against the
// in-process registry must measure the same accepted-request p99 the
// server's exposed latency histogram reports, within the histogram's
// ≤1/32 relative bucket quantization. Both sides wrap the identical
// AssignBatchCtx call, so queueing waits land in both distributions;
// the 1ms ScoreHook floor keeps measurement epsilon far below bucket
// width.
func TestMetricsP99AgreesWithLoad(t *testing.T) {
	dir := t.TempDir()
	path, m := saveFixtureModel(t, dir, 21)
	ts, reg, _ := newTelemetryTestServer(t, path, serve.Options{
		Workers:   4,
		ScoreHook: func(rows int) { time.Sleep(time.Millisecond) },
	}, handlerOptions{})

	w, err := load.Build(load.Config{
		Rate: 1000, Requests: 300, Seed: 9, Dim: m.Dim(), MaxBatch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := load.Run(context.Background(), w, &load.RegistryTarget{Registry: reg})
	if rep.OK != 300 {
		t.Fatalf("load run: %d/%d OK (first error: %s)", rep.OK, rep.Sent, rep.FirstError)
	}

	_, data := getBody(t, ts.URL+"/metrics")
	served := promHistogramQuantile(t, string(data),
		"fairserved_request_latency_seconds", `model="prod"`, 0.99)
	measured := rep.Latency.P99
	if measured <= 0 {
		t.Fatalf("load report p99 = %v", measured)
	}
	if diff := math.Abs(float64(served-measured)) / float64(measured); diff > 1.0/32 {
		t.Errorf("/metrics p99 %v vs fairload p99 %v: %.2f%% apart, want <= 1/32 (~3.1%%)",
			served, measured, diff*100)
	}
}
