package main

import (
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

// Metric family names and help texts. The serving families keep their
// pre-registry names so existing dashboards keep working; the latency
// family changed TYPE from summary to histogram (full-fidelity le
// buckets instead of two pre-computed quantiles).
const (
	stageFamily = "fairserved_request_stage_seconds"
	stageHelp   = "Per-stage request latency (admission wait, queue residency, micro-batch scoring, total), OK requests only."

	latencyFamily = "fairserved_request_latency_seconds"
	latencyHelp   = "Accepted-request latency since model install."
)

// telemetryState owns the process's metric registry and the per-model
// request tracers behind GET /debug/traces.
type telemetryState struct {
	reg *telemetry.Registry

	mu      sync.Mutex
	tracers map[string]*telemetry.RequestTracer
}

func newTelemetryState() *telemetryState {
	return &telemetryState{
		reg:     telemetry.NewRegistry(),
		tracers: map[string]*telemetry.RequestTracer{},
	}
}

// tracerFor hands serve.Options.TracerFor the tracer for a model name,
// creating it on first use. Hot reloads re-construct the Assigner but
// keep the model name, so they keep feeding the same tracer — stage
// histograms and the flight recorder span generations.
func (ts *telemetryState) tracerFor(model string) *telemetry.RequestTracer {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	tr := ts.tracers[model]
	if tr == nil {
		tr = telemetry.NewRequestTracer(ts.reg, stageFamily, stageHelp, model, 0)
		ts.tracers[model] = tr
	}
	return tr
}

// slowest merges every model's flight recorder, slowest first.
func (ts *telemetryState) slowest() []telemetry.Trace {
	ts.mu.Lock()
	tracers := make([]*telemetry.RequestTracer, 0, len(ts.tracers))
	for _, tr := range ts.tracers {
		tracers = append(tracers, tr)
	}
	ts.mu.Unlock()
	var out []telemetry.Trace
	for _, tr := range tracers {
		out = append(out, tr.Slowest()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		if out[i].Model != out[j].Model {
			return out[i].Model < out[j].Model
		}
		return out[i].Seq > out[j].Seq
	})
	return out
}

// watch wires the serving registry into /metrics: an OnScrape hook
// snapshots every model's Stats, latency histogram and drift reports
// exactly once per scrape — Drift() takes the tracker lock the
// assignment path's observe() also takes, so it must not be recomputed
// per metric family — and (re-)registers pull-style instruments over
// the snapshots. Recording itself (counters bumped per request, the
// latency histogram) shares no lock with any of this; see
// serve.Stats.
func (ts *telemetryState) watch(sreg *serve.Registry) {
	r := ts.reg
	r.OnScrape(func() {
		for _, e := range sreg.List() {
			a := e.Assigner()
			st := a.Stats()
			lat := a.Latency()
			gen := float64(e.Generation)
			ml := telemetry.Label{Key: "model", Value: e.Name}
			r.CounterFunc("fairserved_requests_total",
				"Assignment requests served per model.",
				func() uint64 { return st.Requests }, ml)
			r.CounterFunc("fairserved_rows_total",
				"Feature vectors labelled per model.",
				func() uint64 { return st.Rows }, ml)
			r.CounterFunc("fairserved_shed_total",
				"Requests rejected by admission control per model.",
				func() uint64 { return st.Shed }, ml)
			r.CounterFunc("fairserved_deadline_total",
				"Requests failed by their deadline per model.",
				func() uint64 { return st.Deadline }, ml)
			r.GaugeFunc("fairserved_inflight",
				"Admitted requests currently scoring per model.",
				func() float64 { return float64(st.Inflight) }, ml)
			r.GaugeFunc("fairserved_queue_depth",
				"Requests waiting for an admission slot per model.",
				func() float64 { return float64(st.Queued) }, ml)
			r.HistogramFunc(latencyFamily, latencyHelp,
				func() *telemetry.Histogram { return lat }, ml)
			r.GaugeFunc("fairserved_model_generation",
				"Hot-swap generation per model name.",
				func() float64 { return gen }, ml)
			for _, d := range a.Drift() {
				d := d
				al := telemetry.Label{Key: "attribute", Value: d.Attribute}
				r.GaugeFunc("fairserved_drift_max_tv",
					"Max total-variation distance between observed and training cluster mixes.",
					func() float64 { return d.MaxTV }, ml, al)
				r.CounterFunc("fairserved_drift_observed_rows",
					"Rows with sensitive values observed per attribute.",
					func() uint64 { return d.ObservedRows }, ml, al)
			}
		}
	})
}

// newDebugMux builds the opt-in pprof mux served on -debug-addr. It is
// deliberately a separate mux on a separate listener: profiling
// endpoints never ride on the serving address, so exposing :8080 to
// clients can't expose heap dumps.
func newDebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
