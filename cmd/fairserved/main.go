// Command fairserved serves fair-assignment traffic from saved model
// artifacts: load one or more models trained by fairkm/fairstream
// (-save), then answer nearest-centroid assignment queries over HTTP
// while tracking per-model latency and fairness drift.
//
// Usage:
//
//	fairserved -model m.json [-model more.json ...] [-addr :8080]
//	           [-batch 64] [-workers N]
//	           [-max-concurrent N [-max-queue N] [-queue-budget 50ms]]
//	           [-request-timeout 0] [-max-body 33554432]
//	           [-shutdown-timeout 10s] [-debug-addr ""]
//
// Overload behavior: with -max-concurrent set, each model admits at
// most that many concurrent batches; excess requests queue up to
// -max-queue deep and are shed with HTTP 429 (plus a Retry-After
// header) when the queue is full or the estimated wait exceeds
// -queue-budget. With -request-timeout set, requests that cannot
// finish inside the budget fail with HTTP 503 and free their slot.
// Bodies larger than -max-body are rejected with HTTP 413.
//
// Endpoints (all JSON unless noted):
//
//	POST /v1/assign        single {"features":[...]} or batch
//	                       {"rows":[{"features":[...],"sensitive":{...}},...]};
//	                       optional "model" (default: first loaded) and
//	                       "raw" (apply the artifact's feature scaling)
//	GET  /v1/models        loaded models with provenance, serving stats
//	                       and fairness drift reports
//	POST /v1/models/reload {"model":"name","path":"optional new path"} —
//	                       atomic hot-swap; in-flight requests finish on
//	                       the old model
//	GET  /healthz          liveness
//	GET  /metrics          Prometheus text exposition (registry-backed:
//	                       counters, gauges and full-fidelity latency
//	                       histograms, including per-stage request spans)
//	GET  /debug/traces     the slowest recent requests as span traces
//	                       (admission/queue/score/total breakdown)
//
// With -debug-addr set, net/http/pprof is served on that address on a
// separate mux — profiling endpoints never share the serving listener,
// and are entirely off by default.
//
// SIGINT/SIGTERM shut the server down gracefully: the listener closes,
// in-flight requests complete, worker pools drain.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() { cli.Main("fairserved", run) }

// run parses flags and serves until a termination signal. Split from
// main for testability; serveCtx carries the cancelable body.
func run(args []string, out io.Writer) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serveCtx(ctx, args, out)
}

// modelList collects repeated -model flags as name=path or bare paths.
type modelList []string

func (m *modelList) String() string { return strings.Join(*m, ",") }

func (m *modelList) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func serveCtx(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fairserved", flag.ContinueOnError)
	fs.SetOutput(out)
	var models modelList
	fs.Var(&models, "model", "model artifact to serve, as PATH or NAME=PATH (repeatable; first is the default model)")
	var (
		addr    = fs.String("addr", ":8080", "listen address")
		batch   = fs.Int("batch", 0, "micro-batch size per worker task (0 = 64)")
		workers = fs.Int("workers", 0, "scoring workers per model (0 = GOMAXPROCS)")

		maxConc     = fs.Int("max-concurrent", 0, "max concurrent batches per model (0 = unlimited, no admission control)")
		maxQueue    = fs.Int("max-queue", 0, "admission queue depth per model before shedding (0 = default, requires -max-concurrent)")
		queueBudget = fs.Duration("queue-budget", 0, "shed when estimated queue wait exceeds this (0 = queue-depth limit only, requires -max-concurrent)")
		reqTimeout  = fs.Duration("request-timeout", 0, "per-request deadline; expired requests get HTTP 503 (0 = none)")
		maxBody     = fs.Int64("max-body", defaultMaxBody, "largest accepted request body in bytes")
		shutTimeout = fs.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
		debugAddr   = fs.String("debug-addr", "", "serve net/http/pprof on this address, on its own mux (empty = profiling off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(models) == 0 {
		fs.Usage()
		return fmt.Errorf("at least one -model is required")
	}
	if *maxConc < 0 {
		return fmt.Errorf("-max-concurrent must be >= 0, got %d", *maxConc)
	}
	if *maxConc == 0 && (*maxQueue != 0 || *queueBudget != 0) {
		return fmt.Errorf("-max-queue and -queue-budget require -max-concurrent > 0")
	}
	if *maxQueue < 0 {
		return fmt.Errorf("-max-queue must be >= 0, got %d", *maxQueue)
	}
	if *queueBudget < 0 {
		return fmt.Errorf("-queue-budget must be >= 0, got %v", *queueBudget)
	}
	if *reqTimeout < 0 {
		return fmt.Errorf("-request-timeout must be >= 0, got %v", *reqTimeout)
	}
	if *maxBody <= 0 {
		return fmt.Errorf("-max-body must be > 0, got %d", *maxBody)
	}
	if *shutTimeout <= 0 {
		return fmt.Errorf("-shutdown-timeout must be > 0, got %v", *shutTimeout)
	}

	ts := newTelemetryState()
	reg := serve.NewRegistry(serve.Options{
		BatchSize:     *batch,
		Workers:       *workers,
		MaxConcurrent: *maxConc,
		MaxQueue:      *maxQueue,
		QueueBudget:   *queueBudget,
		TracerFor:     ts.tracerFor,
	})
	defer reg.Close()
	ts.watch(reg)
	for _, spec := range models {
		name, path := "", spec
		if i := strings.IndexByte(spec, '='); i >= 0 {
			name, path = spec[:i], spec[i+1:]
		}
		e, err := reg.Load(name, path)
		if err != nil {
			return err
		}
		m := e.Model()
		fmt.Fprintf(out, "loaded %q from %s (k=%d dim=%d lambda=%.4g, trained by %s on %d rows)\n",
			e.Name, path, m.K, m.Dim(), m.Lambda, m.Provenance.Tool, m.Provenance.Rows)
	}

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return err
		}
		debugSrv := &http.Server{Handler: newDebugMux()}
		defer debugSrv.Close() //fairvet:ignore errflow -- best-effort debug server teardown at process exit
		//fairvet:ignore errflow -- Serve always returns non-nil on shutdown; the debug listener is best-effort
		go func() { _ = debugSrv.Serve(dln) }() // best-effort; dies with the process
		fmt.Fprintf(out, "pprof on http://%s/debug/pprof/\n", dln.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: newHandler(reg, ts, handlerOptions{
		RequestTimeout: *reqTimeout,
		MaxBody:        *maxBody,
	})}
	fmt.Fprintf(out, "listening on http://%s (default model %q)\n", ln.Addr(), reg.Default())

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		fmt.Fprintln(out, "shutting down")
		//fairvet:ignore ctxflow -- ctx is already done once shutdown starts; the drain grace period needs a fresh root with its own deadline
		sctx, cancel := context.WithTimeout(context.Background(), *shutTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return err
		}
		return nil
	case err := <-errCh:
		return err
	}
}

// ---- HTTP API ----

// assignRow is one query row.
type assignRow struct {
	Features []float64 `json:"features"`
	// Sensitive optionally carries the row's sensitive values (by
	// attribute name) for the drift tracker; it never influences the
	// assignment.
	Sensitive map[string]string `json:"sensitive,omitempty"`
}

// assignRequest is the /v1/assign body: either the single form
// (features at top level) or the batch form (rows).
type assignRequest struct {
	Model string `json:"model,omitempty"`
	// Raw asks the server to apply the artifact's feature scaling
	// (min-max) to each row before assignment.
	Raw bool `json:"raw,omitempty"`

	Features  []float64         `json:"features,omitempty"`
	Sensitive map[string]string `json:"sensitive,omitempty"`

	Rows []assignRow `json:"rows,omitempty"`
}

type assignment struct {
	Cluster int `json:"cluster"`
	// Distance is the squared Euclidean distance to the winning
	// centroid in the trained feature space.
	Distance float64 `json:"distance"`
}

type assignResponse struct {
	Model       string       `json:"model"`
	Generation  int          `json:"generation"`
	Assignments []assignment `json:"assignments"`
}

type modelInfo struct {
	Name       string           `json:"name"`
	Path       string           `json:"path,omitempty"`
	Default    bool             `json:"default"`
	Generation int              `json:"generation"`
	LoadedAt   time.Time        `json:"loaded_at"`
	K          int              `json:"k"`
	Lambda     float64          `json:"lambda"`
	Dim        int              `json:"dim"`
	Features   []string         `json:"features,omitempty"`
	Provenance model.Provenance `json:"provenance"`
	Requests   uint64           `json:"requests"`
	Rows       uint64           `json:"rows"`
	Shed       uint64           `json:"shed"`
	Deadline   uint64           `json:"deadline"`
	Inflight   int              `json:"inflight"`
	Queued     int              `json:"queued"`
	P50Millis  float64          `json:"p50_ms"`
	P99Millis  float64          `json:"p99_ms"`
	P999Millis float64          `json:"p999_ms"`
	Drift      []driftInfo      `json:"drift,omitempty"`
}

type driftInfo struct {
	Attribute    string  `json:"attribute"`
	ObservedRows uint64  `json:"observed_rows"`
	MaxTV        float64 `json:"max_tv"`
	TrainingAE   float64 `json:"training_ae"`
	ObservedAE   float64 `json:"observed_ae"`
	TrainingMW   float64 `json:"training_mw"`
	ObservedMW   float64 `json:"observed_mw"`
}

type reloadRequest struct {
	Model string `json:"model,omitempty"`
	Path  string `json:"path,omitempty"`
}

// defaultMaxBody bounds request bodies when -max-body is not set.
const defaultMaxBody = 32 << 20

// handlerOptions carries the per-request hardening knobs into the API.
type handlerOptions struct {
	// RequestTimeout caps each /v1/assign request (0 = none).
	RequestTimeout time.Duration
	// MaxBody bounds request bodies in bytes (0 = defaultMaxBody).
	MaxBody int64
}

func (o handlerOptions) maxBody() int64 {
	if o.MaxBody <= 0 {
		return defaultMaxBody
	}
	return o.MaxBody
}

// newHandler builds the fairserved HTTP API over a serving registry
// and the process telemetry state.
func newHandler(reg *serve.Registry, ts *telemetryState, opts handlerOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "models": len(reg.List())})
	})
	mux.HandleFunc("/v1/assign", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		handleAssign(reg, opts, w, r)
	})
	mux.HandleFunc("/v1/models", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"default": reg.Default(),
			"models":  modelInfos(reg),
		})
	})
	mux.HandleFunc("/v1/models/reload", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req reloadRequest
		if err := decodeJSON(w, r, &req, opts.maxBody()); err != nil {
			httpError(w, bodyErrStatus(err), err.Error())
			return
		}
		name := req.Model
		if name == "" {
			name = reg.Default()
		}
		e, err := reg.Reload(name, req.Path)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"model":      e.Name,
			"path":       e.Path,
			"generation": e.Generation,
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		w.Header().Set("Content-Type", telemetry.ContentType)
		_ = ts.reg.WritePrometheus(w) //fairvet:ignore errflow -- write failure means the scraper hung up; no channel left to report on
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		traces := ts.slowest()
		if traces == nil {
			traces = []telemetry.Trace{}
		}
		writeJSON(w, http.StatusOK, map[string]any{"traces": traces})
	})
	return mux
}

func handleAssign(reg *serve.Registry, opts handlerOptions, w http.ResponseWriter, r *http.Request) {
	var req assignRequest
	if err := decodeJSON(w, r, &req, opts.maxBody()); err != nil {
		httpError(w, bodyErrStatus(err), err.Error())
		return
	}
	single := req.Features != nil
	if single == (len(req.Rows) > 0) {
		httpError(w, http.StatusBadRequest, "provide exactly one of \"features\" (single) or \"rows\" (batch)")
		return
	}
	e, err := reg.Get(req.Model)
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	a := e.Assigner()
	m := e.Model()

	rows := req.Rows
	if single {
		rows = []assignRow{{Features: req.Features, Sensitive: req.Sensitive}}
	}
	features := make([][]float64, len(rows))
	var sensitive []map[string]string
	for i, row := range rows {
		x := row.Features
		if req.Raw && m.Scaling != nil && len(x) == m.Dim() {
			x = append([]float64(nil), x...)
			m.Scaling.Apply(x)
		}
		features[i] = x
		if row.Sensitive != nil {
			if sensitive == nil {
				sensitive = make([]map[string]string, len(rows))
			}
			sensitive[i] = row.Sensitive
		}
	}
	ctx := r.Context()
	if opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.RequestTimeout)
		defer cancel()
	}
	clusters, dists, err := a.AssignBatchCtx(ctx, features, sensitive)
	if err != nil {
		var shed *serve.ShedError
		switch {
		case errors.As(err, &shed):
			// Overload: tell well-behaved clients when to come back.
			secs := int64((shed.RetryAfter + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
			httpError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			httpError(w, http.StatusServiceUnavailable, err.Error())
		default:
			httpError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	resp := assignResponse{
		Model:       e.Name,
		Generation:  e.Generation,
		Assignments: make([]assignment, len(clusters)),
	}
	for i, c := range clusters {
		resp.Assignments[i] = assignment{Cluster: c, Distance: dists[i]}
	}
	writeJSON(w, http.StatusOK, resp)
}

func modelInfos(reg *serve.Registry) []modelInfo {
	def := reg.Default()
	var infos []modelInfo
	for _, e := range reg.List() {
		m := e.Model()
		st := e.Assigner().Stats()
		info := modelInfo{
			Name:       e.Name,
			Path:       e.Path,
			Default:    e.Name == def,
			Generation: e.Generation,
			LoadedAt:   e.LoadedAt,
			K:          m.K,
			Lambda:     m.Lambda,
			Dim:        m.Dim(),
			Features:   m.FeatureNames,
			Provenance: m.Provenance,
			Requests:   st.Requests,
			Rows:       st.Rows,
			Shed:       st.Shed,
			Deadline:   st.Deadline,
			Inflight:   st.Inflight,
			Queued:     st.Queued,
			P50Millis:  float64(st.P50) / float64(time.Millisecond),
			P99Millis:  float64(st.P99) / float64(time.Millisecond),
			P999Millis: float64(st.P999) / float64(time.Millisecond),
		}
		for _, d := range e.Assigner().Drift() {
			info.Drift = append(info.Drift, driftInfo{
				Attribute:    d.Attribute,
				ObservedRows: d.ObservedRows,
				MaxTV:        d.MaxTV,
				TrainingAE:   d.Training.AE,
				ObservedAE:   d.Observed.AE,
				TrainingMW:   d.Training.MW,
				ObservedMW:   d.Observed.MW,
			})
		}
		infos = append(infos, info)
	}
	return infos
}

// decodeJSON strictly decodes one JSON body of at most maxBody bytes:
// unknown fields, trailing data, and oversized payloads are all
// rejected rather than silently accepted or read unboundedly. The
// *http.MaxBytesError from an oversized body is preserved in the wrap
// so bodyErrStatus can map it to 413.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any, maxBody int64) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	if dec.More() {
		return errors.New("bad request body: trailing data")
	}
	return nil
}

// bodyErrStatus maps a decodeJSON failure to its status: 413 when the
// body blew the -max-body bound, 400 for everything else.
func bodyErrStatus(err error) int {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //fairvet:ignore errflow -- status line already sent; an encode error has no channel back to the client
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
