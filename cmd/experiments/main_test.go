package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSelectExperiments(t *testing.T) {
	all, err := selectExperiments("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 11 {
		t.Errorf("all selects %d experiments, want 11 (the paper's tables+figures)", len(all))
	}
	some, err := selectExperiments("table7, fig5,baselines")
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 3 || some[0].name != "table7" || some[2].name != "baselines" {
		t.Errorf("selection = %v", names(some))
	}
	if _, err := selectExperiments("table9"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func names(rs []runnable) []string {
	var out []string
	for _, r := range rs {
		out = append(out, r.name)
	}
	return out
}

func TestRunKinematicsExperimentEndToEnd(t *testing.T) {
	outFile := filepath.Join(t.TempDir(), "results.txt")
	var buf bytes.Buffer
	err := run([]string{"-exp", "table7", "-reps", "2", "-out", outFile}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"### table7", "CO", "FairKM"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("stdout missing %q", want)
		}
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != buf.String() {
		t.Error("-out file differs from stdout")
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "bogus"}, &buf); err == nil {
		t.Error("bogus experiment accepted")
	}
	if err := run([]string{"-bogusflag"}, &buf); err == nil {
		t.Error("bogus flag accepted")
	}
}

// TestValidationAudit pins the CLI failure contract for experiments:
// unknown study names and impossible parameters error cleanly.
func TestValidationAudit(t *testing.T) {
	cases := map[string][]string{
		"unknown study":       {"-exp", "table99"},
		"one bad in list":     {"-exp", "table5,nope"},
		"empty study name":    {"-exp", "table5,,table6"},
		"reps zero":           {"-exp", "table5", "-reps", "0"},
		"unknown flag":        {"-what"},
		"unwritable out file": {"-exp", "table5", "-reps", "1", "-out", "no/such/dir/out.txt"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(args, &buf); err == nil {
				t.Errorf("run(%v) accepted a bad invocation", args)
			}
		})
	}
}

// TestRunTelemetryAndProfile: -telemetry journals every solver run of
// the experiment (parallel restarts serialize into one valid JSONL
// file) and -cpuprofile writes a non-empty pprof profile.
func TestRunTelemetryAndProfile(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "runs.jsonl")
	profile := filepath.Join(dir, "cpu.prof")
	var buf bytes.Buffer
	err := run([]string{"-exp", "table7", "-reps", "2",
		"-telemetry", journal, "-cpuprofile", profile}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("journal is empty")
	}
	methods := map[string]bool{}
	for i, line := range lines {
		var rec struct {
			Type string `json:"type"`
			Run  string `json:"run"`
			Iter int    `json:"iter"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("journal line %d not JSON: %v\n%s", i, err, line)
		}
		if rec.Type != "iter" || rec.Iter < 1 {
			t.Errorf("journal line %d = %+v", i, rec)
		}
		methods[strings.SplitN(rec.Run, "[", 2)[0]] = true
	}
	// table7 runs FairKM and the K-Means baseline; both must journal.
	for _, m := range []string{"FairKM", "K-Means"} {
		if !methods[m] {
			t.Errorf("journal has no %s runs (methods: %v)", m, methods)
		}
	}
	if prof, err := os.ReadFile(profile); err != nil || len(prof) == 0 {
		t.Errorf("cpu profile: err=%v size=%d", err, len(prof))
	}
}
