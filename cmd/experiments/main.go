// Command experiments regenerates every table and figure of the FairKM
// paper's evaluation (EDBT 2020, Section 5) on the synthetic stand-in
// datasets, plus the extension experiments described in DESIGN.md.
//
// Usage:
//
//	experiments [-exp all|table5..table8|fig1..fig7|baselines|scaling|numeric|stream|shardsweep]
//	            [-reps N] [-seed S] [-adult-rows N] [-parallel P]
//	            [-budget D] [-trace] [-telemetry run.jsonl]
//	            [-cpuprofile prof.out] [-out FILE]
//
// -telemetry streams a JSONL run journal (one record per solver
// iteration, labelled with method, k and seed) to the given path.
// -cpuprofile writes a pprof CPU profile of the whole run for
// `go tool pprof`.
//
// With -exp all (the default) it runs the paper's full evaluation.
// -reps controls the number of random restarts averaged per
// configuration (the paper uses 100; the default 10 finishes in
// minutes). -adult-rows shrinks the Adult dataset for quick runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strings"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/telemetry"
)

// renderer is the common surface of every experiment result.
type renderer interface{ Render() string }

// runnable is one named experiment.
type runnable struct {
	name string
	run  func(experiments.Options) (renderer, error)
}

func wrapQ(f func(experiments.Options) (*experiments.QualityTable, error)) func(experiments.Options) (renderer, error) {
	return func(o experiments.Options) (renderer, error) { return f(o) }
}

func wrapF(f func(experiments.Options) (*experiments.FairnessTable, error)) func(experiments.Options) (renderer, error) {
	return func(o experiments.Options) (renderer, error) { return f(o) }
}

func wrapC(f func(experiments.Options) (*experiments.ComparisonFigure, error)) func(experiments.Options) (renderer, error) {
	return func(o experiments.Options) (renderer, error) { return f(o) }
}

func wrapS(f func(experiments.Options) (*experiments.SweepFigure, error)) func(experiments.Options) (renderer, error) {
	return func(o experiments.Options) (renderer, error) { return f(o) }
}

// paperExperiments regenerate the paper's tables and figures; -exp all
// runs exactly these.
var paperExperiments = []runnable{
	{"table5", wrapQ(experiments.RunTable5)},
	{"table6", wrapF(experiments.RunTable6)},
	{"table7", wrapQ(experiments.RunTable7)},
	{"table8", wrapF(experiments.RunTable8)},
	{"fig1", wrapC(experiments.RunFig1)},
	{"fig2", wrapC(experiments.RunFig2)},
	{"fig3", wrapC(experiments.RunFig3)},
	{"fig4", wrapC(experiments.RunFig4)},
	{"fig5", wrapS(experiments.RunFig5)},
	{"fig6", wrapS(experiments.RunFig6)},
	{"fig7", wrapS(experiments.RunFig7)},
}

// extensionExperiments go beyond the paper (DESIGN.md "Extension
// experiments"); selected by name only.
var extensionExperiments = []runnable{
	{"baselines", func(o experiments.Options) (renderer, error) { return experiments.RunBaselines(o) }},
	{"scaling", func(o experiments.Options) (renderer, error) { return experiments.RunScalability(o) }},
	{"numeric", func(o experiments.Options) (renderer, error) { return experiments.RunNumericSensitive(o) }},
	{"ksweep", func(o experiments.Options) (renderer, error) { return experiments.RunKSweep(o) }},
	{"convergence", func(o experiments.Options) (renderer, error) { return experiments.RunConvergence(o) }},
	{"attrsweep", func(o experiments.Options) (renderer, error) { return experiments.RunAttrSweep(o) }},
	{"stream", func(o experiments.Options) (renderer, error) { return experiments.RunStreamStudy(o) }},
	{"shardsweep", func(o experiments.Options) (renderer, error) { return experiments.RunShardStudy(o) }},
}

func main() { cli.Main("experiments", run) }

// run executes the selected experiments, writing rendered results to
// out (and to the -out file if given). Split from main for testability.
// run's named result lets the deferred closes of written outputs (CPU
// profile, telemetry journal, results file) report a failed final
// flush instead of dropping it. Inner Create calls bind distinct
// error names so &err below always means the function result.
func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		exp       = fs.String("exp", "all", "experiment(s): all, table5..table8, fig1..fig7, baselines, scaling, numeric, ksweep, convergence, attrsweep, stream, shardsweep (comma-separated)")
		reps      = fs.Int("reps", 10, "random restarts averaged per configuration (paper: 100)")
		seed      = fs.Int64("seed", 1, "base random seed")
		adultRows = fs.Int("adult-rows", 0, "reduced Adult generation size (0 = paper's 32561)")
		parallel  = fs.Int("parallel", 0, "engine sweep workers (FairKM/K-Means/ZGYA): 0 = paper's sequential sweeps, -1 = GOMAXPROCS, n = n workers")
		budget    = fs.Duration("budget", 0, "wall-clock budget per individual solver run (0 = none)")
		trace     = fs.Bool("trace", false, "log every solver iteration to stderr (very verbose)")
		telem     = fs.String("telemetry", "", "write a JSONL run journal (per-iteration records for every solver run) to this path")
		cpuProf   = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
		outPath   = fs.String("out", "", "also write output to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *reps < 1 {
		return fmt.Errorf("-reps must be at least 1 (got %d)", *reps)
	}
	if *cpuProf != "" {
		f, cerr := os.Create(*cpuProf)
		if cerr != nil {
			return cerr
		}
		defer cli.CloseCapture(&err, f)
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	opts := experiments.DefaultOptions()
	opts.Reps = *reps
	opts.Seed = *seed
	opts.AdultRows = *adultRows
	opts.Parallelism = *parallel
	opts.Budget = *budget
	if *trace {
		opts.Trace = os.Stderr
	}
	if *telem != "" {
		journal, cerr := telemetry.CreateRunLog(*telem)
		if cerr != nil {
			return cerr
		}
		opts.Journal = journal
		defer cli.CloseCapture(&err, journal)
	}

	selected, err := selectExperiments(*exp)
	if err != nil {
		return err
	}

	w := out
	if *outPath != "" {
		f, cerr := os.Create(*outPath)
		if cerr != nil {
			return cerr
		}
		defer cli.CloseCapture(&err, f)
		w = io.MultiWriter(out, f)
	}

	for _, r := range selected {
		res, err := r.run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		if _, err := fmt.Fprintf(w, "### %s\n\n%s\n", r.name, res.Render()); err != nil {
			return err
		}
	}
	if opts.Journal != nil {
		if err := opts.Journal.Close(); err != nil {
			return fmt.Errorf("telemetry journal: %w", err)
		}
	}
	return nil
}

// selectExperiments resolves the -exp flag value to a run list.
func selectExperiments(spec string) ([]runnable, error) {
	if spec == "all" {
		return paperExperiments, nil
	}
	known := map[string]runnable{}
	for _, r := range append(append([]runnable{}, paperExperiments...), extensionExperiments...) {
		known[r.name] = r
	}
	var selected []runnable
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		r, ok := known[name]
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (known: all, table5..table8, fig1..fig7, baselines, scaling, numeric, ksweep, convergence, attrsweep, stream, shardsweep)", name)
		}
		selected = append(selected, r)
	}
	return selected, nil
}
