// Benchmarks regenerating every table and figure of the FairKM paper
// (EDBT 2020) plus ablations of the design choices DESIGN.md calls out.
//
// Table/figure benches run the same code paths as cmd/experiments at a
// reduced scale (2 restarts, 6000-row Adult generation) so the whole
// suite completes in minutes; run cmd/experiments for full-scale
// numbers. Quality/fairness readings are attached to the benchmark
// output via b.ReportMetric, so `go test -bench=.` doubles as a compact
// reproduction report.
package fairclust

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/data/adult"
	"repro/internal/data/kinematics"
	"repro/internal/dataset"
	"repro/internal/doc2vec"
	"repro/internal/experiments"
	"repro/internal/hungarian"
	"repro/internal/kmeans"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/zgya"
)

// benchOptions is the reduced scale used by the table/figure benches.
func benchOptions() experiments.Options {
	opts := experiments.DefaultOptions()
	opts.Reps = 2
	opts.AdultRows = 6000
	opts.SilhouetteSample = 1000
	return opts
}

// warmAdult / warmKin pre-generate the cached datasets so dataset
// construction is excluded from benchmark timings.
func warmAdult(b *testing.B) *dataset.Dataset {
	b.Helper()
	ds, err := experiments.LoadAdult(benchOptions())
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func warmKin(b *testing.B) *dataset.Dataset {
	b.Helper()
	ds, err := experiments.LoadKinematics(benchOptions())
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// ---- Tables ----

// BenchmarkTable5_AdultQuality regenerates Table 5 (clustering quality
// on Adult, k ∈ {5, 15}).
func BenchmarkTable5_AdultQuality(b *testing.B) {
	warmAdult(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.RunTable5(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		s := t.Suites[0]
		b.ReportMetric(s.KMeans.CO, "CO-kmeans")
		b.ReportMetric(s.ZGYAAvg.CO, "CO-zgya")
		b.ReportMetric(s.FairKM.CO, "CO-fairkm")
	}
}

// BenchmarkTable6_AdultFairness regenerates Table 6 (fairness on Adult,
// per sensitive attribute, k ∈ {5, 15}).
func BenchmarkTable6_AdultFairness(b *testing.B) {
	warmAdult(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.RunTable6(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		s := t.Suites[0]
		b.ReportMetric(s.KMeansFair[experiments.MeanAttr].AE, "AE-kmeans")
		b.ReportMetric(s.ZGYAFair[experiments.MeanAttr].AE, "AE-zgya")
		b.ReportMetric(s.FairKMFair[experiments.MeanAttr].AE, "AE-fairkm")
	}
}

// BenchmarkTable7_KinematicsQuality regenerates Table 7 (clustering
// quality on Kinematics, k=5).
func BenchmarkTable7_KinematicsQuality(b *testing.B) {
	warmKin(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.RunTable7(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		s := t.Suites[0]
		b.ReportMetric(s.KMeans.CO, "CO-kmeans")
		b.ReportMetric(s.FairKM.CO, "CO-fairkm")
		b.ReportMetric(s.FairKM.SH, "SH-fairkm")
	}
}

// BenchmarkTable8_KinematicsFairness regenerates Table 8 (fairness on
// Kinematics, per problem type, k=5).
func BenchmarkTable8_KinematicsFairness(b *testing.B) {
	warmKin(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.RunTable8(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		s := t.Suites[0]
		b.ReportMetric(s.KMeansFair[experiments.MeanAttr].AE, "AE-kmeans")
		b.ReportMetric(s.ZGYAFair[experiments.MeanAttr].AE, "AE-zgya")
		b.ReportMetric(s.FairKMFair[experiments.MeanAttr].AE, "AE-fairkm")
	}
}

// ---- Figures ----

func benchComparisonFigure(b *testing.B, run func(experiments.Options) (*experiments.ComparisonFigure, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		f, err := run(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Suite.ZGYAFair[experiments.MeanAttr].Get(f.Measure), "zgya")
		b.ReportMetric(f.Suite.FairKMFair[experiments.MeanAttr].Get(f.Measure), "fairkm-all")
		b.ReportMetric(f.Suite.FairKMSingleFair[experiments.MeanAttr].Get(f.Measure), "fairkm-s")
	}
}

// BenchmarkFig1_AdultAW regenerates Figure 1 (Adult, AW per attribute).
func BenchmarkFig1_AdultAW(b *testing.B) {
	warmAdult(b)
	b.ResetTimer()
	benchComparisonFigure(b, experiments.RunFig1)
}

// BenchmarkFig2_AdultMW regenerates Figure 2 (Adult, MW per attribute).
func BenchmarkFig2_AdultMW(b *testing.B) {
	warmAdult(b)
	b.ResetTimer()
	benchComparisonFigure(b, experiments.RunFig2)
}

// BenchmarkFig3_KinematicsAW regenerates Figure 3 (Kinematics, AW).
func BenchmarkFig3_KinematicsAW(b *testing.B) {
	warmKin(b)
	b.ResetTimer()
	benchComparisonFigure(b, experiments.RunFig3)
}

// BenchmarkFig4_KinematicsMW regenerates Figure 4 (Kinematics, MW).
func BenchmarkFig4_KinematicsMW(b *testing.B) {
	warmKin(b)
	b.ResetTimer()
	benchComparisonFigure(b, experiments.RunFig4)
}

// BenchmarkFig5_LambdaVsQuality regenerates Figure 5 (Kinematics CO and
// SH across the λ sweep).
func BenchmarkFig5_LambdaVsQuality(b *testing.B) {
	warmKin(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig5(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		first, last := f.Sweep.Points[0], f.Sweep.Points[len(f.Sweep.Points)-1]
		b.ReportMetric(first.CO, "CO-lam1000")
		b.ReportMetric(last.CO, "CO-lam10000")
	}
}

// BenchmarkFig6_LambdaVsDeviation regenerates Figure 6 (Kinematics DevC
// and DevO across the λ sweep).
func BenchmarkFig6_LambdaVsDeviation(b *testing.B) {
	warmKin(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig6(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last := f.Sweep.Points[len(f.Sweep.Points)-1]
		b.ReportMetric(last.DevC, "DevC-lam10000")
		b.ReportMetric(last.DevO, "DevO-lam10000")
	}
}

// BenchmarkFig7_LambdaVsFairness regenerates Figure 7 (Kinematics
// fairness metrics across the λ sweep).
func BenchmarkFig7_LambdaVsFairness(b *testing.B) {
	warmKin(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig7(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		first, last := f.Sweep.Points[0], f.Sweep.Points[len(f.Sweep.Points)-1]
		b.ReportMetric(first.Fair.AE, "AE-lam1000")
		b.ReportMetric(last.Fair.AE, "AE-lam10000")
	}
}

// ---- Ablations (design choices called out in DESIGN.md) ----

// ablationDataset is a mid-size Adult sample reused by ablation benches.
func ablationDataset(b *testing.B) *dataset.Dataset {
	b.Helper()
	ds, err := adult.Generate(adult.Config{Seed: 3, Rows: 4000})
	if err != nil {
		b.Fatal(err)
	}
	ds.MinMaxNormalize()
	return ds
}

// BenchmarkAblationClusterWeight compares the paper's squared
// fractional-cardinality cluster weight (e=2) against the linear sum
// it rejects (e=1): e=1 tolerates skewed cluster sizes, visible in the
// fairness metric reported.
func BenchmarkAblationClusterWeight(b *testing.B) {
	ds := ablationDataset(b)
	for _, exp := range []float64{1, 2} {
		b.Run(fmt.Sprintf("exponent=%g", exp), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(ds, core.Config{
					K: 5, Lambda: 1e6, Seed: 1, ClusterWeightExponent: exp,
				})
				if err != nil {
					b.Fatal(err)
				}
				reps := metrics.FairnessAll(ds, res.Assign, 5)
				b.ReportMetric(reps[len(reps)-1].AE, "meanAE")
				b.ReportMetric(float64(maxSize(res.Sizes)), "maxClusterSize")
			}
		})
	}
}

// BenchmarkAblationDomainNormalization compares Eq. 4's 1/|Values(S)|
// normalization against its absence, where the 41-value native-country
// attribute dominates the 2-value gender attribute.
func BenchmarkAblationDomainNormalization(b *testing.B) {
	ds := ablationDataset(b)
	for _, disable := range []bool{false, true} {
		b.Run(fmt.Sprintf("disabled=%v", disable), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(ds, core.Config{
					K: 5, Lambda: 1e6, Seed: 1, NoDomainNormalization: disable,
				})
				if err != nil {
					b.Fatal(err)
				}
				gender := metrics.Fairness(ds, ds.SensitiveByName("gender"), res.Assign, 5)
				country := metrics.Fairness(ds, ds.SensitiveByName("native-country"), res.Assign, 5)
				b.ReportMetric(gender.AE, "genderAE")
				b.ReportMetric(country.AE, "countryAE")
			}
		})
	}
}

// BenchmarkAblationMiniBatch compares per-move prototype updates (the
// paper's algorithm) with the Section 6.1 mini-batch heuristic.
func BenchmarkAblationMiniBatch(b *testing.B) {
	ds := ablationDataset(b)
	for _, batch := range []int{0, 64, 512} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(ds, core.Config{
					K: 5, Lambda: 1e6, Seed: 1, MiniBatch: batch,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Objective, "objective")
				b.ReportMetric(float64(res.Iterations), "iterations")
			}
		})
	}
}

// BenchmarkAblationInit compares FairKM under the paper's random-
// partition initialization against k-means++ seeding.
func BenchmarkAblationInit(b *testing.B) {
	ds := ablationDataset(b)
	for _, init := range []kmeans.InitMethod{kmeans.RandomPartition, kmeans.KMeansPlusPlus} {
		b.Run(init.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(ds, core.Config{K: 5, Lambda: 1e6, Seed: 1, Init: init})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.KMeansTerm, "kmeansTerm")
				b.ReportMetric(res.FairnessTerm*1e6, "fairness-x1e6")
			}
		})
	}
}

// BenchmarkAblationIncrementalVsNaive contrasts the cost of one full
// incremental FairKM sweep with evaluating the objective from scratch
// once per point — the speedup the sufficient-statistics design buys.
func BenchmarkAblationIncrementalVsNaive(b *testing.B) {
	ds, err := adult.Generate(adult.Config{Seed: 3, Rows: 1500})
	if err != nil {
		b.Fatal(err)
	}
	ds.MinMaxNormalize()
	b.Run("incremental-run", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(ds, core.Config{K: 5, Lambda: 1e5, Seed: 1, MaxIter: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive-objective-per-point", func(b *testing.B) {
		assign := make([]int, ds.N())
		rng := stats.NewRNG(1)
		for i := range assign {
			assign[i] = rng.Intn(5)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// One naive evaluation per 100 points stands in for the
			// O(n) evaluations a from-scratch sweep would need; scale
			// the reading accordingly when comparing.
			for p := 0; p < ds.N(); p += 100 {
				if _, err := core.EvaluateObjective(ds, assign, 5, 1e5, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// ---- Micro-benchmarks of the substrates ----

// BenchmarkFairKMAdultFull times one full-scale FairKM run per
// iteration (paper configuration: 15682 rows, k=5, λ=10⁶).
func BenchmarkFairKMAdultFull(b *testing.B) {
	if testing.Short() {
		b.Skip("full-scale Adult in -short mode")
	}
	ds, err := adult.Generate(adult.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	ds.MinMaxNormalize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(ds, core.Config{K: 5, Lambda: 1e6, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKMeansAdult times the S-blind baseline on the same data.
func BenchmarkKMeansAdult(b *testing.B) {
	ds := ablationDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kmeans.Run(ds.Features, kmeans.Config{K: 5, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkZGYAAdult times one single-attribute ZGYA run.
func BenchmarkZGYAAdult(b *testing.B) {
	ds := ablationDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := zgya.Run(ds, "gender", zgya.Config{K: 5, AutoLambda: true, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDoc2Vec times PV-DBOW training on the kinematics corpus.
func BenchmarkDoc2Vec(b *testing.B) {
	problems := kinematics.Problems(1)
	docs := make([][]string, len(problems))
	for i, p := range problems {
		docs[i] = doc2vec.Tokenize(p.Text)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := doc2vec.Train(docs, doc2vec.Config{Dim: 100, Epochs: 10, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSilhouetteSampled times the sampled silhouette measure used
// throughout the evaluation.
func BenchmarkSilhouetteSampled(b *testing.B) {
	ds := ablationDataset(b)
	res, err := kmeans.Run(ds.Features, kmeans.Config{K: 5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.SilhouetteSampled(ds.Features, res.Assign, 5, 1000, int64(i))
	}
}

// BenchmarkHungarian times the assignment solver behind DevC.
func BenchmarkHungarian(b *testing.B) {
	rng := stats.NewRNG(1)
	const n = 32
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = rng.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := hungarian.Solve(cost); err != nil {
			b.Fatal(err)
		}
	}
}

func maxSize(sizes []int) int {
	m := 0
	for _, s := range sizes {
		if s > m {
			m = s
		}
	}
	return m
}

// BenchmarkAblationSkewCompensation contrasts plain FairKM with the
// χ²-style skew-compensated variant (Section 6.1 future work #2) on
// Adult, reporting fairness on the 86%-skewed race attribute.
func BenchmarkAblationSkewCompensation(b *testing.B) {
	ds := ablationDataset(b)
	for _, comp := range []bool{false, true} {
		b.Run(fmt.Sprintf("compensated=%v", comp), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(ds, core.Config{
					K: 5, Lambda: 1e6, Seed: 1, SkewCompensation: comp,
				})
				if err != nil {
					b.Fatal(err)
				}
				race := metrics.Fairness(ds, ds.SensitiveByName("race"), res.Assign, 5)
				b.ReportMetric(race.AE*1e4, "raceAE-x1e4")
				b.ReportMetric(race.MW*1e4, "raceMW-x1e4")
			}
		})
	}
}
