package fairclust

import (
	"repro/internal/bera"
	"repro/internal/fairlet"
	"repro/internal/fairproj"
	"repro/internal/kcenter"
	"repro/internal/proportional"
	"repro/internal/spectral"
	"repro/internal/zgya"
)

// Re-exports of the baseline fair-clustering families surveyed in the
// paper's Table 1, so downstream users can compare FairKM against them
// through one import. Each baseline's semantics, constraints and cost
// profile are documented on its underlying package.

// ZGYAConfig parameterizes the ZGYA baseline (Ziko et al. 2019):
// K-Means plus a KL-divergence fairness penalty for a single
// multi-valued sensitive attribute.
type ZGYAConfig = zgya.Config

// ZGYAResult is a completed ZGYA clustering.
type ZGYAResult = zgya.Result

// ZGYA runs the ZGYA baseline on one categorical sensitive attribute.
func ZGYA(ds *Dataset, attr string, cfg ZGYAConfig) (*ZGYAResult, error) {
	return zgya.Run(ds, attr, cfg)
}

// FairletConfig parameterizes fairlet-decomposition clustering
// (Chierichetti et al. 2017) for a single binary sensitive attribute.
type FairletConfig = fairlet.Config

// FairletResult is a completed fairlet clustering.
type FairletResult = fairlet.Result

// Fairlets runs fairlet-decomposition clustering.
func Fairlets(ds *Dataset, attr string, cfg FairletConfig) (*FairletResult, error) {
	return fairlet.Run(ds, attr, cfg)
}

// BeraConfig parameterizes the LP-based fair-assignment baseline
// (Bera et al. 2019) over all categorical sensitive attributes.
type BeraConfig = bera.Config

// BeraResult is a completed Bera et al. run.
type BeraResult = bera.Result

// BeraAssign runs the Bera et al. pipeline (vanilla centers → fair
// assignment LP → rounding).
func BeraAssign(ds *Dataset, cfg BeraConfig) (*BeraResult, error) {
	return bera.Run(ds, cfg)
}

// SpectralConfig parameterizes (fair) spectral clustering
// (Kleindessner et al. 2019).
type SpectralConfig = spectral.Config

// SpectralResult is a completed spectral clustering.
type SpectralResult = spectral.Result

// Spectral runs normalized spectral clustering; set Config.Fair for
// the group-fairness constrained variant.
func Spectral(ds *Dataset, cfg SpectralConfig) (*SpectralResult, error) {
	return spectral.Run(ds, cfg)
}

// KCenterConfig parameterizes fair k-center summarization
// (Kleindessner et al. 2019).
type KCenterConfig = kcenter.Config

// KCenterResult is a completed fair k-center run.
type KCenterResult = kcenter.Result

// KCenter picks k representatives under per-group quotas.
func KCenter(ds *Dataset, cfg KCenterConfig) (*KCenterResult, error) {
	return kcenter.Run(ds, cfg)
}

// ProportionalResult is a completed proportionally-fair clustering.
type ProportionalResult = proportional.Result

// GreedyCapture runs Chen et al.'s attribute-agnostic proportionally
// fair clustering over the dataset's features.
func GreedyCapture(ds *Dataset, k int) (*ProportionalResult, error) {
	return proportional.GreedyCapture(ds.Features, k)
}

// FairProjection removes every sensitive group's mean-difference
// direction from the feature space (the space-transformation family of
// fair clustering), returning a dataset any vanilla algorithm can
// cluster with reduced linear group leakage.
func FairProjection(ds *Dataset) (*Dataset, error) {
	return fairproj.MeanDifferenceProjection(ds)
}

// FairPCA composes FairProjection with a top-k principal-component
// reduction.
func FairPCA(ds *Dataset, k int) (*Dataset, error) {
	return fairproj.FairPCA(ds, k)
}

// ProportionalityViolation is a blocking coalition found by
// AuditProportionality.
type ProportionalityViolation = proportional.Violation

// AuditProportionality checks a clustering for ρ-approximate
// proportionality violations (nil means none found).
func AuditProportionality(ds *Dataset, assign []int, centers []int, k int, rho float64) *ProportionalityViolation {
	return proportional.Audit(ds.Features, assign, centers, k, rho)
}
