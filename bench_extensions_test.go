package fairclust

import (
	"fmt"
	"testing"

	"repro/internal/bera"
	"repro/internal/core"
	"repro/internal/coreset"
	"repro/internal/data/adult"
	"repro/internal/data/kinematics"
	"repro/internal/dataset"
	"repro/internal/eigen"
	"repro/internal/experiments"
	"repro/internal/fairlet"
	"repro/internal/kcenter"
	"repro/internal/kmeans"
	"repro/internal/lp"
	"repro/internal/mcmf"
	"repro/internal/pipeline"
	"repro/internal/proportional"
	"repro/internal/spectral"
	"repro/internal/stats"
	"repro/internal/testfix"
)

// Benchmarks for the extension experiments and the baseline-family
// substrates (LP, flow, eigensolver) implemented beyond the paper's
// own evaluation.

// BenchmarkExtBaselineZoo regenerates the cross-family comparison
// table (cmd/experiments -exp baselines).
func BenchmarkExtBaselineZoo(b *testing.B) {
	warmKin(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp, err := experiments.RunBaselines(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range cmp.Rows {
			if row.Method == "FairKM(all)" {
				b.ReportMetric(row.MeanAE, "fairkm-meanAE")
			}
		}
	}
}

// BenchmarkExtScalability regenerates the Section 4.3.1 wall-clock
// scaling measurement.
func BenchmarkExtScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunScalability(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtNumericSensitive regenerates the Eq. 22 numeric-
// sensitive-attribute experiment.
func BenchmarkExtNumericSensitive(b *testing.B) {
	warmAdult(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ns, err := experiments.RunNumericSensitive(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ns.Blind.AvgGap, "blind-ageGap")
		b.ReportMetric(ns.FairKM.AvgGap, "fairkm-ageGap")
	}
}

// BenchmarkFairletKinematics times fairlet decomposition (min-cost
// flow) on the 161-problem dataset.
func BenchmarkFairletKinematics(b *testing.B) {
	ds := warmKin(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fairlet.Run(ds, "Type-1", fairlet.Config{K: 5, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBeraKinematics times the LP-based baseline end to end
// (805-variable LP solved by the dense simplex).
func BenchmarkBeraKinematics(b *testing.B) {
	ds := warmKin(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bera.Run(ds, bera.Config{K: 5, Delta: 0.4, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFairSpectralKinematics times constrained spectral clustering
// (dense Jacobi eigensolve on a 161-node graph).
func BenchmarkFairSpectralKinematics(b *testing.B) {
	ds := warmKin(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spectral.Run(ds, spectral.Config{K: 5, Fair: true, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFairKCenterKinematics times quota-constrained k-center.
func BenchmarkFairKCenterKinematics(b *testing.B) {
	ds := warmKin(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kcenter.Run(ds, kcenter.Config{K: 5, Attr: "Type-1", Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyCaptureKinematics times proportionally fair
// clustering.
func BenchmarkGreedyCaptureKinematics(b *testing.B) {
	ds := warmKin(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proportional.GreedyCapture(ds.Features, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFairCoreset times fair coreset construction plus weighted
// K-Means on the compressed set, against full K-Means for context.
func BenchmarkFairCoreset(b *testing.B) {
	ds := ablationDataset(b)
	b.Run("construct+cluster", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w, err := coreset.Fair(ds, "gender", 400, 5, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			sub := make([][]float64, len(w.Indices))
			for pos, idx := range w.Indices {
				sub[pos] = ds.Features[idx]
			}
			if _, err := kmeans.RunWeighted(sub, w.Weights, kmeans.Config{K: 5, Seed: int64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-kmeans", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kmeans.Run(ds.Features, kmeans.Config{K: 5, Seed: int64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimplexLP times the LP substrate on a mid-size random
// program.
func BenchmarkSimplexLP(b *testing.B) {
	rng := stats.NewRNG(1)
	const nv, mc = 60, 40
	p := lp.Problem{C: make([]float64, nv)}
	for j := range p.C {
		p.C[j] = rng.Float64()*2 - 1
	}
	for i := 0; i < mc; i++ {
		row := make([]float64, nv)
		for j := range row {
			row[j] = rng.Float64()
		}
		p.A = append(p.A, row)
		p.Ops = append(p.Ops, lp.LE)
		p.B = append(p.B, 5+rng.Float64()*5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lp.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinCostFlow times the flow substrate on a dense bipartite
// assignment instance.
func BenchmarkMinCostFlow(b *testing.B) {
	rng := stats.NewRNG(2)
	const n = 60
	for i := 0; i < b.N; i++ {
		g := mcmf.New(2*n + 2)
		s, t := 0, 2*n+1
		for u := 0; u < n; u++ {
			g.AddEdge(s, 1+u, 1, 0)
			g.AddEdge(n+1+u, t, 1, 0)
			for v := 0; v < n; v++ {
				g.AddEdge(1+u, n+1+v, 1, rng.Float64())
			}
		}
		if _, _, err := g.MinCostFlow(s, t, -1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJacobiEigen times the symmetric eigensolver at the graph
// sizes fair spectral clustering uses.
func BenchmarkJacobiEigen(b *testing.B) {
	rng := stats.NewRNG(3)
	const n = 120
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.Gaussian(0, 1)
			a[i][j], a[j][i] = v, v
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eigen.SymEigen(a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStream measures the summarize-then-solve pipeline against
// full-data FairKM on Adult (n=6500, streamed in 500-row blocks) and a
// synthetic n=10⁵ mixture. Sub-benchmarks separate the two paths so
// `make bench` records their wall-clocks side by side in
// BENCH_stream.json; the stream path reports the summary size and the
// summary/full objective ratio as metrics.
func BenchmarkStream(b *testing.B) {
	adultDS, err := adult.Generate(adult.Config{Seed: 1, Rows: 6500, SkipParity: true})
	if err != nil {
		b.Fatal(err)
	}
	adultDS.MinMaxNormalize()
	adultStrat, err := adultDS.WithSensitive("gender", "race")
	if err != nil {
		b.Fatal(err)
	}
	synth := testfix.Synth(101, 100000, 6, 2, 0)

	cases := []struct {
		name  string
		ds    *dataset.Dataset
		k     int
		chunk int
	}{
		{"adult6500", adultStrat, 7, 500},
		{"synth100k", synth, 8, 2048},
	}
	for _, c := range cases {
		c := c
		var fullObj float64
		b.Run("full/"+c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(c.ds, core.Config{K: c.k, AutoLambda: true, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				fullObj = res.Objective
			}
		})
		b.Run("stream/"+c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				src := pipeline.NewSliceSource(c.ds, c.chunk)
				res, err := pipeline.FitStream(src, pipeline.Config{
					K: c.k, AutoLambda: true, CoresetSize: 160, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Summary.N()), "summary-rows")
				if fullObj > 0 {
					b.ReportMetric(res.Solve.Objective/fullObj, "obj-ratio")
				}
			}
		})
	}
}

// BenchmarkShard measures sharded summarize-then-solve scaling on the
// same corpora as BenchmarkStream: for each shard count S the chunked
// source deals round-robin into S summarizers ingesting on one worker
// each, and the merged union solves. `make bench` records the sweep in
// BENCH_shard.json; sub-benchmark metrics carry the union size and the
// merged-solve objective relative to the S=1 pipeline, which must stay
// flat — sharding buys wall-clock, not objective.
func BenchmarkShard(b *testing.B) {
	adultDS, err := adult.Generate(adult.Config{Seed: 1, Rows: 6500, SkipParity: true})
	if err != nil {
		b.Fatal(err)
	}
	adultDS.MinMaxNormalize()
	adultStrat, err := adultDS.WithSensitive("gender", "race")
	if err != nil {
		b.Fatal(err)
	}
	synth := testfix.Synth(101, 100000, 6, 2, 0)

	cases := []struct {
		name  string
		ds    *dataset.Dataset
		k     int
		chunk int
	}{
		{"adult6500", adultStrat, 7, 500},
		{"synth100k", synth, 8, 2048},
	}
	for _, c := range cases {
		c := c
		var s1Obj float64
		for _, shards := range []int{1, 2, 4, 8} {
			shards := shards
			b.Run(fmt.Sprintf("shards=%d/%s", shards, c.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := pipeline.FitStreamSharded(pipeline.NewSliceSource(c.ds, c.chunk), pipeline.ShardedConfig{
						Config: pipeline.Config{K: c.k, AutoLambda: true, CoresetSize: 160, Seed: 1},
						Shards: shards,
					})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(res.Summary.N()), "summary-rows")
					if shards == 1 {
						s1Obj = res.Solve.Objective
					} else if s1Obj > 0 {
						b.ReportMetric(res.Solve.Objective/s1Obj, "obj-vs-s1")
					}
				}
			})
		}
	}
}

// BenchmarkDatasetGeneration times the two synthetic generators.
func BenchmarkDatasetGeneration(b *testing.B) {
	b.Run("adult-8k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := adultGen(int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("kinematics", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kinematics.Generate(kinematics.Config{Seed: int64(i), Dim: 100, Epochs: 20}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// adultGen generates a reduced Adult dataset for generator benches.
func adultGen(seed int64) (interface{ N() int }, error) {
	ds, err := adult.Generate(adult.Config{Seed: seed, Rows: 8000})
	if err != nil {
		return nil, err
	}
	return ds, nil
}
