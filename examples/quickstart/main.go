// Quickstart: cluster a small in-memory dataset fairly.
//
// The scenario is the paper's introduction in miniature: candidates are
// clustered by exam scores for shortlisting, scores correlate with
// gender, and a gender-blind clustering therefore produces
// gender-skewed clusters. FairKM fixes the skew at a small coherence
// cost. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/stats"

	fairclust "repro"
)

func main() {
	// Build a dataset of 200 candidates with two exam scores. Group
	// "f" candidates score slightly lower on exam 1 (a biased test),
	// so score-based clusters pick up gender.
	b := fairclust.NewBuilder("exam1", "exam2")
	b.AddCategoricalSensitive("gender")
	rng := stats.NewRNG(42)
	for i := 0; i < 200; i++ {
		gender := "m"
		shift := 8.0
		if i%2 == 0 {
			gender = "f"
			shift = 0
		}
		b.Row([]float64{
			rng.Gaussian(60+shift, 6),
			rng.Gaussian(65, 8),
		}, []string{gender}, nil)
	}
	ds, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	// Bring features to [0,1]: the λ=(n/k)² heuristic assumes unit-scale
	// features (see Section 5.4 of the paper).
	ds.MinMaxNormalize()

	const k = 4

	// Gender-blind K-Means: coherent but skewed.
	km, err := fairclust.KMeans(ds, fairclust.KMeansConfig{K: k, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	show("K-Means (gender-blind)", ds, km.Assign, k)

	// FairKM with the paper's automatic λ: balanced clusters.
	fkm, err := fairclust.Run(ds, fairclust.Config{K: k, AutoLambda: true, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	show("FairKM (λ=(n/k)²)", ds, fkm.Assign, k)
}

// show prints cluster sizes, gender mix and the summary measures.
func show(name string, ds *fairclust.Dataset, assign []int, k int) {
	fmt.Printf("%s\n", name)
	gender := ds.SensitiveByName("gender")
	counts := make([][2]int, k)
	for i, c := range assign {
		counts[c][gender.Codes[i]]++
	}
	for c, fm := range counts {
		total := fm[0] + fm[1]
		fmt.Printf("  cluster %d: %3d candidates, %2.0f%% %s\n",
			c, total, 100*float64(fm[0])/float64(total), gender.Values[0])
	}
	reps := fairclust.Fairness(ds, assign, k)
	mean := reps[len(reps)-1]
	fmt.Printf("  CO=%.1f  gender deviation: AE=%.4f MW=%.4f\n\n",
		fairclust.ClusteringObjective(ds, assign, k), mean.AE, mean.MW)
}
