// Questionnaire: build balanced questionnaires from a question bank —
// the paper's Kinematics scenario (Section 5.1).
//
// A question bank holds 161 kinematics word problems of five types with
// very different difficulty. Clustering the bank by textual similarity
// (Doc2Vec embeddings) yields one questionnaire per cluster — but
// lexically similar problems are usually of the same type, so blind
// clusters give one student all the hard two-dimensional projectile
// problems and another all the easy horizontal-motion ones. Treating
// the five type flags as sensitive attributes, FairKM makes every
// questionnaire's type mix reflect the bank's. Run with:
//
//	go run ./examples/questionnaire
package main

import (
	"fmt"
	"log"

	"repro/internal/data/kinematics"

	fairclust "repro"
)

func main() {
	ds, err := kinematics.Generate(kinematics.Config{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("question bank: %d problems, types ", ds.N())
	for ty, c := range kinematics.TypeCounts {
		fmt.Printf("%d:%d ", ty+1, c)
	}
	fmt.Print("\n\n")

	const k = 5 // five questionnaires

	km, err := fairclust.KMeans(ds, fairclust.KMeansConfig{K: k, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fkm, err := fairclust.Run(ds, fairclust.Config{K: k, Lambda: 4000, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Type mix per questionnaire (percent of questionnaire, rows = questionnaires):")
	show(ds, "text-similarity clustering (type-blind)", km.Assign, k)
	show(ds, "FairKM (type-fair)", fkm.Assign, k)

	kmMean := meanAE(ds, km.Assign, k)
	fkMean := meanAE(ds, fkm.Assign, k)
	fmt.Printf("mean type deviation (AE): blind %.4f -> FairKM %.4f (%.0fx fairer)\n",
		kmMean, fkMean, kmMean/fkMean)
}

func show(ds *fairclust.Dataset, name string, assign []int, k int) {
	fmt.Printf("\n%s:\n", name)
	fmt.Printf("  %-4s %6s   %s\n", "Q#", "size", "type mix %% (1..5)")
	// Per cluster, count problems of each type.
	sizes := make([]int, k)
	mix := make([][]int, k)
	for c := range mix {
		mix[c] = make([]int, kinematics.TypeCount)
	}
	for i, c := range assign {
		sizes[c]++
		for ty, name := range kinematics.TypeNames {
			s := ds.SensitiveByName(name)
			if s.Values[s.Codes[i]] == "yes" {
				mix[c][ty]++
			}
		}
	}
	for c := 0; c < k; c++ {
		row := fmt.Sprintf("  Q%-3d %6d   ", c+1, sizes[c])
		for ty := 0; ty < kinematics.TypeCount; ty++ {
			pct := 0.0
			if sizes[c] > 0 {
				pct = 100 * float64(mix[c][ty]) / float64(sizes[c])
			}
			row += fmt.Sprintf("%5.1f", pct)
		}
		fmt.Println(row)
	}
}

func meanAE(ds *fairclust.Dataset, assign []int, k int) float64 {
	reps := fairclust.Fairness(ds, assign, k)
	return reps[len(reps)-1].AE
}
