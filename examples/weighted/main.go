// Weighted: prioritizing some sensitive attributes over others — the
// paper's Section 4.4.2 extension.
//
// Fairness on certain attributes (gender, race) is often legally or
// socially more critical than on others. FairKM's per-attribute
// weights w_S amplify their loss terms, steering the fairness budget
// toward them. This example clusters synthetic census records three
// ways: blind, FairKM with uniform weights, and FairKM with a 10x
// weight on gender — showing the gender deviation shrinking further
// while lower-priority attributes relax. Run with:
//
//	go run ./examples/weighted
package main

import (
	"fmt"
	"log"

	"repro/internal/data/adult"

	fairclust "repro"
)

func main() {
	ds, err := adult.Generate(adult.Config{Seed: 3, Rows: 6000})
	if err != nil {
		log.Fatal(err)
	}
	ds.MinMaxNormalize()
	const k = 5

	km, err := fairclust.KMeans(ds, fairclust.KMeansConfig{K: k, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	uniform, err := fairclust.Run(ds, fairclust.Config{K: k, AutoLambda: true, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	prioritized, err := fairclust.Run(ds, fairclust.Config{
		K: k, AutoLambda: true, Seed: 1,
		// Gender outweighs every other attribute 10:1 (Eq. 23).
		Weights: map[string]float64{
			"gender": 10, "race": 1, "marital-status": 1,
			"relationship": 1, "native-country": 1,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Per-attribute fairness deviation (AE, lower = fairer), n=%d, k=%d\n\n", ds.N(), k)
	fmt.Printf("%-16s %12s %15s %18s\n", "attribute", "blind", "uniform w_S", "gender-weighted")
	byAttr := func(reps []fairclust.FairnessReport) map[string]fairclust.FairnessReport {
		m := map[string]fairclust.FairnessReport{}
		for _, r := range reps {
			m[r.Attribute] = r
		}
		return m
	}
	b := byAttr(fairclust.Fairness(ds, km.Assign, k))
	u := byAttr(fairclust.Fairness(ds, uniform.Assign, k))
	p := byAttr(fairclust.Fairness(ds, prioritized.Assign, k))
	for _, attr := range adult.SensitiveNames {
		fmt.Printf("%-16s %12.4f %15.4f %18.4f\n", attr, b[attr].AE, u[attr].AE, p[attr].AE)
	}
	fmt.Printf("%-16s %12.4f %15.4f %18.4f\n", "(mean)", b["mean"].AE, u["mean"].AE, p["mean"].AE)

	fmt.Printf("\nclustering objective: blind %.1f, uniform %.1f, gender-weighted %.1f\n",
		fairclust.ClusteringObjective(ds, km.Assign, k),
		fairclust.ClusteringObjective(ds, uniform.Assign, k),
		fairclust.ClusteringObjective(ds, prioritized.Assign, k))
}
