// Summarize: pick k fair representatives from a dataset — the fair
// k-center data-summarization scenario (Kleindessner et al. 2019,
// reference [13] in the paper's related work).
//
// A 70:30 gendered population is summarized by 10 representatives for
// a review panel. Plain farthest-point k-center picks whoever covers
// space best, which can skew the panel; fair k-center enforces a 7:3
// quota while keeping the covering radius close. This example also
// contrasts the center-quota notion of fairness with FairKM's
// proportional-cluster notion on the same data. Run with:
//
//	go run ./examples/summarize
package main

import (
	"fmt"
	"log"

	"repro/internal/data/adult"
	"repro/internal/kcenter"

	fairclust "repro"
)

func main() {
	ds, err := adult.Generate(adult.Config{Seed: 21, Rows: 3000})
	if err != nil {
		log.Fatal(err)
	}
	ds.MinMaxNormalize()
	gender := ds.SensitiveByName("gender")
	fr := ds.Fractions(gender)
	fmt.Printf("population: %d people, gender mix %s %.0f%% / %s %.0f%%\n\n",
		ds.N(), gender.Values[0], 100*fr[0], gender.Values[1], 100*fr[1])

	const k = 10

	// Fair k-center: quotas proportional to the dataset mix.
	fair, err := kcenter.Run(ds, kcenter.Config{K: k, Attr: "gender", Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fair k-center summary (quotas %v):\n", fair.Quotas)
	counts := make([]int, 2)
	for _, c := range fair.Centers {
		counts[gender.Codes[c]]++
	}
	fmt.Printf("  representatives per gender: %s=%d %s=%d\n",
		gender.Values[0], counts[0], gender.Values[1], counts[1])
	fmt.Printf("  covering radius: %.4f\n\n", fair.Radius)

	// Contrast: unconstrained farthest-point traversal (emulated by a
	// quota equal to whatever it picks is not available; instead show
	// FairKM's cluster-proportion notion on the same data).
	fkm, err := fairclust.Run(ds, fairclust.Config{K: k, AutoLambda: true, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	reps := fairclust.Fairness(ds, fkm.Assign, k)
	var genderAE float64
	for _, r := range reps {
		if r.Attribute == "gender" {
			genderAE = r.AE
		}
	}
	fmt.Printf("FairKM on the same data (cluster-proportion fairness): gender AE=%.4f across %d clusters\n", genderAE, k)
	fmt.Println("\nThe two notions are complementary: k-center fairness constrains who")
	fmt.Println("REPRESENTS the data; FairKM constrains who is GROUPED together.")

	// Show a few representatives' profiles.
	fmt.Println("\nsample representatives (age, edu-years, hours):")
	for i, c := range fair.Centers[:min(5, len(fair.Centers))] {
		fmt.Printf("  #%d: %s, profile %.2f / %.2f / %.2f\n",
			i+1, gender.Values[gender.Codes[c]],
			ds.Features[c][0], ds.Features[c][3], ds.Features[c][7])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
