// Census: fair clustering of census records with five sensitive
// attributes — the paper's Adult scenario (Section 5.1).
//
// A marketing or screening pipeline clusters people on socio-economic
// features (age, education, hours, capital gains, ...). Those features
// correlate with gender, race, marital status, relationship status and
// country of origin, so feature-based clusters end up demographically
// skewed, and any per-cluster action (a promotion, extra scrutiny)
// lands unevenly across groups. FairKM balances all five attributes at
// once — something single-attribute methods like ZGYA cannot do in one
// run. Run with:
//
//	go run ./examples/census [-rows 8000] [-k 5]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/data/adult"
	"repro/internal/zgya"

	fairclust "repro"
)

func main() {
	rows := flag.Int("rows", 8000, "census rows to generate (pre-undersampling)")
	k := flag.Int("k", 5, "number of clusters")
	flag.Parse()

	ds, err := adult.Generate(adult.Config{Seed: 7, Rows: *rows})
	if err != nil {
		log.Fatal(err)
	}
	ds.MinMaxNormalize()
	fmt.Printf("census dataset: %d people, %d features, %d sensitive attributes\n\n",
		ds.N(), ds.Dim(), len(ds.Sensitive))

	// Baseline 1: demographic-blind K-Means.
	km, err := fairclust.KMeans(ds, fairclust.KMeansConfig{K: *k, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Baseline 2: ZGYA can enforce fairness on ONE attribute per run;
	// pick gender, the most visibly skewed one here.
	zg, err := zgya.Run(ds, "gender", zgya.Config{K: *k, AutoLambda: true, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// FairKM: all five sensitive attributes in a single run, with the
	// paper's λ heuristic.
	fkm, err := fairclust.Run(ds, fairclust.Config{K: *k, AutoLambda: true, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-24s %10s %8s  %s\n", "method", "CO", "SH", "per-attribute AE (lower = fairer)")
	header := "                                             "
	for _, s := range ds.Sensitive {
		header += fmt.Sprintf("%-16s", s.Name)
	}
	fmt.Println(header)
	show(ds, "K-Means (blind)", km.Assign, *k)
	show(ds, "ZGYA(gender)", zg.Assign, *k)
	show(ds, "FairKM (all 5)", fkm.Assign, *k)

	fmt.Println("\nNote how ZGYA fixes gender but leaves the other four attributes")
	fmt.Println("as skewed as the blind baseline, while FairKM improves all five.")
}

func show(ds *fairclust.Dataset, name string, assign []int, k int) {
	co := fairclust.ClusteringObjective(ds, assign, k)
	sh := fairclust.Silhouette(ds, assign, k, 1500, 1)
	row := fmt.Sprintf("%-24s %10.2f %8.4f  ", name, co, sh)
	reps := fairclust.Fairness(ds, assign, k)
	for _, rep := range reps[:len(reps)-1] { // skip the mean row
		row += fmt.Sprintf("%-16.4f", rep.AE)
	}
	fmt.Println(row)
}
